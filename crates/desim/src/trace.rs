//! Generic timestamped trace recording.
//!
//! The VORX "software oscilloscope" (§6.2 of the paper) records execution
//! data while the application runs and displays it afterwards. This module
//! provides the recording half in a domain-agnostic way: a `Trace<E>` is an
//! append-only log of `(SimTime, E)` pairs that higher layers (the
//! oscilloscope, `cdb`, experiment harnesses) interpret.

use serde::Serialize;

use crate::time::SimTime;

/// An append-only, time-ordered event log.
#[derive(Debug, Clone)]
pub struct Trace<E> {
    events: Vec<(SimTime, E)>,
    enabled: bool,
}

impl<E> Default for Trace<E> {
    fn default() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
        }
    }
}

impl<E> Trace<E> {
    /// A new, enabled trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// A trace that discards everything (zero overhead for production runs).
    pub fn disabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Record `event` at `t`. Events must be recorded in non-decreasing time
    /// order (the simulation guarantees this naturally).
    pub fn record(&mut self, t: SimTime, event: E) {
        if self.enabled {
            debug_assert!(
                self.events.last().is_none_or(|(last, _)| *last <= t),
                "trace events recorded out of order"
            );
            self.events.push((t, event));
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turn recording on or off mid-run (the oscilloscope lets the user
    /// bracket the interesting interval).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterate over `(time, event)` pairs in record order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &E)> {
        self.events.iter().map(|(t, e)| (*t, e))
    }

    /// Events within `[from, to)`.
    ///
    /// The log is time-sorted (see [`Trace::record`]), so both bounds are
    /// located by binary search; cost is O(log n + k) for k yielded events
    /// rather than a scan of the whole log.
    pub fn window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = (SimTime, &E)> {
        let lo = self.events.partition_point(|(t, _)| *t < from);
        let hi = lo + self.events[lo..].partition_point(|(t, _)| *t < to);
        self.events[lo..hi].iter().map(|(t, e)| (*t, e))
    }

    /// Drop all recorded events, keeping the enabled flag.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Consume the trace, returning the raw log.
    pub fn into_events(self) -> Vec<(SimTime, E)> {
        self.events
    }

    /// Merge several time-ordered traces into one global timeline. Ordering
    /// is by `(time, trace index, record index)`: ties at equal time resolve
    /// in favor of the earlier-indexed trace, and record order within one
    /// trace is preserved (the merge is stable). The sharded engine uses
    /// this to reassemble the global trace from per-shard traces; the result
    /// upholds the [`Trace::record`] ordering invariant, so
    /// [`Trace::window`] and the oscilloscope consume it unchanged.
    ///
    /// The merge moves events, never clones them, and splices whole *runs*:
    /// whenever the leading trace's next events all precede every other
    /// trace's head, they are located by binary search and bulk-moved in one
    /// `extend` instead of element-by-element head comparisons. Shard traces
    /// are long stretches of local activity punctuated by cross-shard
    /// contact, so runs are long and the merge is effectively a few
    /// `memcpy`s. A single non-empty input is returned as-is (zero copies,
    /// zero allocations).
    pub fn merge(traces: Vec<Trace<E>>) -> Trace<E> {
        let mut nonempty = traces;
        nonempty.retain(|t| !t.is_empty());
        if nonempty.len() <= 1 {
            let mut t = nonempty.pop().unwrap_or_default();
            t.enabled = true;
            return t;
        }
        let total = nonempty.iter().map(Trace::len).sum();
        let mut parts: Vec<std::vec::IntoIter<(SimTime, E)>> =
            nonempty.into_iter().map(|t| t.events.into_iter()).collect();
        // Invariant: every entry in `parts` is non-empty, in original trace
        // order (exhausted entries are removed, preserving tie stability).
        let head = |p: &std::vec::IntoIter<(SimTime, E)>| p.as_slice()[0].0;
        let mut events = Vec::with_capacity(total);
        while parts.len() > 1 {
            // The part with the earliest head goes next; ties at equal time
            // resolve to the earliest index (stability).
            let mut i = 0;
            let mut it = head(&parts[0]);
            for (j, p) in parts.iter().enumerate().skip(1) {
                let t = head(p);
                if t < it {
                    i = j;
                    it = t;
                }
            }
            // How far may part `i` run? Up to the earliest head among the
            // others: inclusively if `i` wins the tie (i < j), else
            // exclusively.
            let (lim_t, lim_j) = parts
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(j, p)| (head(p), j))
                .min()
                .expect("at least two parts");
            let run = if i < lim_j {
                parts[i].as_slice().partition_point(|(t, _)| *t <= lim_t)
            } else {
                parts[i].as_slice().partition_point(|(t, _)| *t < lim_t)
            };
            debug_assert!(run >= 1, "earliest head must be part of its run");
            events.extend(parts[i].by_ref().take(run));
            if parts[i].as_slice().is_empty() {
                parts.remove(i);
            }
        }
        events.extend(parts.pop().expect("one part remains"));
        Trace {
            events,
            enabled: true,
        }
    }
}

impl<E: Serialize> Trace<E> {
    /// Serialize the trace as a JSON array of `{t_ns, event}` objects, for
    /// offline analysis. Uses a hand-rolled envelope to avoid requiring
    /// `SimTime: Serialize`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, (t, e)) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"t_ns\":{},\"event\":{}}}",
                t.as_ns(),
                serde_json_value(e)
            ));
        }
        out.push(']');
        out
    }
}

/// Minimal JSON serialization via serde's `Serialize` into a string. We avoid
/// pulling in `serde_json` (not in the approved dependency set) by
/// implementing the small subset we need.
fn serde_json_value<E: Serialize>(e: &E) -> String {
    let mut ser = MiniJson::default();
    e.serialize(&mut ser)
        .expect("trace event serialization failed");
    ser.out
}

/// A deliberately small JSON serializer: supports the scalar types, strings,
/// sequences, maps, structs, and enum variants that trace events use.
#[derive(Default)]
struct MiniJson {
    out: String,
}

#[derive(Debug)]
struct MiniJsonError(String);

impl std::fmt::Display for MiniJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for MiniJsonError {}
impl serde::ser::Error for MiniJsonError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        MiniJsonError(msg.to_string())
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

macro_rules! ser_num {
    ($fn:ident, $ty:ty) => {
        fn $fn(self, v: $ty) -> Result<(), MiniJsonError> {
            self.out.push_str(&v.to_string());
            Ok(())
        }
    };
}

impl<'a> serde::Serializer for &'a mut MiniJson {
    type Ok = ();
    type Error = MiniJsonError;
    type SerializeSeq = SeqSer<'a>;
    type SerializeTuple = SeqSer<'a>;
    type SerializeTupleStruct = SeqSer<'a>;
    type SerializeTupleVariant = SeqSer<'a>;
    type SerializeMap = MapSer<'a>;
    type SerializeStruct = MapSer<'a>;
    type SerializeStructVariant = MapSer<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), MiniJsonError> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }
    ser_num!(serialize_i8, i8);
    ser_num!(serialize_i16, i16);
    ser_num!(serialize_i32, i32);
    ser_num!(serialize_i64, i64);
    ser_num!(serialize_u8, u8);
    ser_num!(serialize_u16, u16);
    ser_num!(serialize_u32, u32);
    ser_num!(serialize_u64, u64);
    fn serialize_f32(self, v: f32) -> Result<(), MiniJsonError> {
        self.serialize_f64(f64::from(v))
    }
    fn serialize_f64(self, v: f64) -> Result<(), MiniJsonError> {
        if v.is_finite() {
            self.out.push_str(&v.to_string());
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), MiniJsonError> {
        self.out.push_str(&esc(&v.to_string()));
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), MiniJsonError> {
        self.out.push_str(&esc(v));
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), MiniJsonError> {
        use serde::ser::SerializeSeq;
        let mut seq = self.serialize_seq(Some(v.len()))?;
        for b in v {
            seq.serialize_element(b)?;
        }
        seq.end()
    }
    fn serialize_none(self) -> Result<(), MiniJsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), MiniJsonError> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), MiniJsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), MiniJsonError> {
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
    ) -> Result<(), MiniJsonError> {
        self.serialize_str(variant)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), MiniJsonError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), MiniJsonError> {
        self.out.push('{');
        self.out.push_str(&esc(variant));
        self.out.push(':');
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<SeqSer<'a>, MiniJsonError> {
        self.out.push('[');
        Ok(SeqSer {
            ser: self,
            first: true,
            close: "]",
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<SeqSer<'a>, MiniJsonError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<SeqSer<'a>, MiniJsonError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<SeqSer<'a>, MiniJsonError> {
        self.out.push('{');
        self.out.push_str(&esc(variant));
        self.out.push_str(":[");
        Ok(SeqSer {
            ser: self,
            first: true,
            close: "]}",
        })
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<MapSer<'a>, MiniJsonError> {
        self.out.push('{');
        Ok(MapSer {
            ser: self,
            first: true,
            close: "}",
        })
    }
    fn serialize_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<MapSer<'a>, MiniJsonError> {
        self.serialize_map(Some(len))
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<MapSer<'a>, MiniJsonError> {
        self.out.push('{');
        self.out.push_str(&esc(variant));
        self.out.push_str(":{");
        Ok(MapSer {
            ser: self,
            first: true,
            close: "}}",
        })
    }
}

struct SeqSer<'a> {
    ser: &'a mut MiniJson,
    first: bool,
    close: &'static str,
}

impl SeqSer<'_> {
    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.ser.out.push(',');
        }
    }
}

impl serde::ser::SerializeSeq for SeqSer<'_> {
    type Ok = ();
    type Error = MiniJsonError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), MiniJsonError> {
        self.sep();
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), MiniJsonError> {
        self.ser.out.push_str(self.close);
        Ok(())
    }
}
impl serde::ser::SerializeTuple for SeqSer<'_> {
    type Ok = ();
    type Error = MiniJsonError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), MiniJsonError> {
        serde::ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), MiniJsonError> {
        serde::ser::SerializeSeq::end(self)
    }
}
impl serde::ser::SerializeTupleStruct for SeqSer<'_> {
    type Ok = ();
    type Error = MiniJsonError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), MiniJsonError> {
        serde::ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), MiniJsonError> {
        serde::ser::SerializeSeq::end(self)
    }
}
impl serde::ser::SerializeTupleVariant for SeqSer<'_> {
    type Ok = ();
    type Error = MiniJsonError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), MiniJsonError> {
        serde::ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), MiniJsonError> {
        serde::ser::SerializeSeq::end(self)
    }
}

struct MapSer<'a> {
    ser: &'a mut MiniJson,
    first: bool,
    close: &'static str,
}

impl MapSer<'_> {
    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.ser.out.push(',');
        }
    }
}

impl serde::ser::SerializeMap for MapSer<'_> {
    type Ok = ();
    type Error = MiniJsonError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), MiniJsonError> {
        self.sep();
        // JSON keys must be strings; serialize then coerce.
        let mut tmp = MiniJson::default();
        key.serialize(&mut tmp)?;
        if tmp.out.starts_with('"') {
            self.ser.out.push_str(&tmp.out);
        } else {
            self.ser.out.push_str(&esc(&tmp.out));
        }
        Ok(())
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), MiniJsonError> {
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), MiniJsonError> {
        self.ser.out.push_str(self.close);
        Ok(())
    }
}
impl serde::ser::SerializeStruct for MapSer<'_> {
    type Ok = ();
    type Error = MiniJsonError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), MiniJsonError> {
        self.sep();
        self.ser.out.push_str(&esc(key));
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), MiniJsonError> {
        self.ser.out.push_str(self.close);
        Ok(())
    }
}
impl serde::ser::SerializeStructVariant for MapSer<'_> {
    type Ok = ();
    type Error = MiniJsonError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), MiniJsonError> {
        serde::ser::SerializeStruct::serialize_field(self, key, value)
    }
    fn end(self) -> Result<(), MiniJsonError> {
        serde::ser::SerializeStruct::end(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct Ev {
        node: u32,
        kind: &'static str,
    }

    // Hand-written (derive unavailable offline, see vendor/README.md).
    impl Serialize for Ev {
        fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            use serde::ser::SerializeStruct;
            let mut st = serializer.serialize_struct("Ev", 2)?;
            st.serialize_field("node", &self.node)?;
            st.serialize_field("kind", &self.kind)?;
            st.end()
        }
    }

    #[test]
    fn records_in_order_and_iterates() {
        let mut t = Trace::new();
        t.record(SimTime::from_ns(1), Ev { node: 0, kind: "a" });
        t.record(SimTime::from_ns(5), Ev { node: 1, kind: "b" });
        assert_eq!(t.len(), 2);
        let kinds: Vec<_> = t.iter().map(|(_, e)| e.kind).collect();
        assert_eq!(kinds, ["a", "b"]);
    }

    #[test]
    fn window_filters_half_open() {
        let mut t = Trace::new();
        for i in 0..10u64 {
            t.record(SimTime::from_ns(i * 10), i);
        }
        let in_window: Vec<_> = t
            .window(SimTime::from_ns(20), SimTime::from_ns(50))
            .map(|(_, e)| *e)
            .collect();
        assert_eq!(in_window, vec![2, 3, 4]);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, 1u8);
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record(SimTime::ZERO, 2u8);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn json_output_structs_and_enums() {
        enum K {
            Unit,
            Tuple(u8, u8),
            Struct { x: i32 },
        }

        // Hand-written (derive unavailable offline, see vendor/README.md).
        impl Serialize for K {
            fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                use serde::ser::{SerializeStructVariant, SerializeTupleVariant};
                match self {
                    K::Unit => serializer.serialize_unit_variant("K", 0, "Unit"),
                    K::Tuple(a, b) => {
                        let mut tv = serializer.serialize_tuple_variant("K", 1, "Tuple", 2)?;
                        tv.serialize_field(a)?;
                        tv.serialize_field(b)?;
                        tv.end()
                    }
                    K::Struct { x } => {
                        let mut sv = serializer.serialize_struct_variant("K", 2, "Struct", 1)?;
                        sv.serialize_field("x", x)?;
                        sv.end()
                    }
                }
            }
        }
        let mut t = Trace::new();
        t.record(SimTime::from_ns(3), K::Unit);
        t.record(SimTime::from_ns(4), K::Tuple(1, 2));
        t.record(SimTime::from_ns(5), K::Struct { x: -7 });
        let json = t.to_json();
        assert_eq!(
            json,
            r#"[{"t_ns":3,"event":"Unit"},{"t_ns":4,"event":{"Tuple":[1,2]}},{"t_ns":5,"event":{"Struct":{"x":-7}}}]"#
        );
    }

    #[test]
    fn json_escapes_strings() {
        let mut t = Trace::new();
        t.record(SimTime::ZERO, "he said \"hi\"\n".to_string());
        assert_eq!(t.to_json(), r#"[{"t_ns":0,"event":"he said \"hi\"\n"}]"#);
    }

    #[test]
    fn merge_interleaves_by_time_with_stable_ties() {
        let mut a = Trace::new();
        a.record(SimTime::from_ns(1), "a1");
        a.record(SimTime::from_ns(5), "a5");
        a.record(SimTime::from_ns(5), "a5b");
        let mut b = Trace::new();
        b.record(SimTime::from_ns(1), "b1");
        b.record(SimTime::from_ns(3), "b3");
        let merged = Trace::merge(vec![a, b]);
        let got: Vec<_> = merged.iter().map(|(t, e)| (t.as_ns(), *e)).collect();
        // Equal times: trace 0 before trace 1; within a trace, record order.
        assert_eq!(
            got,
            vec![(1, "a1"), (1, "b1"), (3, "b3"), (5, "a5"), (5, "a5b")]
        );
    }

    #[test]
    fn clear_and_into_events() {
        let mut t = Trace::new();
        t.record(SimTime::ZERO, 1u8);
        t.clear();
        assert!(t.is_empty());
        t.record(SimTime::from_ns(9), 2u8);
        let evs = t.into_events();
        assert_eq!(evs, vec![(SimTime::from_ns(9), 2u8)]);
    }
}
