//! # desim — deterministic discrete-event simulation kernel
//!
//! The foundation of the HPC/VORX reproduction. Everything the paper
//! measures happens in *simulated* time on simulated 1988 hardware; this
//! crate provides that substrate:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! * [`Simulation`] — the executor. Hardware models run as **event
//!   callbacks** over a user-defined world state `W`; software (operating
//!   system code, application processes) runs as **cooperative-thread
//!   processes** written in ordinary blocking style via [`Ctx`].
//! * [`sync`] — wait sets, semaphores, and mailboxes for simulated
//!   processes.
//! * [`Trace`] — timestamped event recording for the measurement tools.
//! * [`ShardedSim`] — asynchronous conservative parallel execution: several
//!   `Simulation` shards advance independently to their earliest input
//!   time (peer frontier + per-link lookahead), exchanging messages over
//!   lock-free per-link SPSC mailboxes with deterministic injection order.
//!
//! ## Determinism
//!
//! Exactly one simulated activity executes at any moment; the event queue is
//! ordered by `(time, sequence)`. Two runs of the same scenario produce
//! bit-identical traces. Processes are real OS threads, but they are resumed
//! one at a time by the executor, so there is no scheduling nondeterminism.
//!
//! ## Example
//!
//! ```
//! use desim::{Simulation, SimDuration, Ctx};
//!
//! #[derive(Default)]
//! struct World { delivered: bool }
//!
//! let mut sim = Simulation::new(World::default());
//! let rx = sim.spawn("receiver", |ctx: Ctx<World>| {
//!     ctx.wait_until(|w, _| w.delivered.then_some(()));
//!     assert_eq!(ctx.now().as_us_f64(), 5.0);
//! });
//! sim.schedule_in(SimDuration::from_us(5), move |w: &mut World, s| {
//!     w.delivered = true;          // "hardware" delivers a message
//!     s.wake(rx, desim::Wakeup::START);
//! });
//! assert!(sim.run_to_idle().all_finished());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod sim;
mod time;

pub mod affinity;
pub mod fault;
pub mod shard;
pub mod spsc;
pub mod sync;
pub mod trace;

pub use fault::{
    Disposition, FaultAction, FaultEvent, FaultSchedule, FaultStats, LinkFaults, LinkStats,
};
pub use shard::{OutMsg, PdesMonitor, PdesStats, ShardWorld, ShardedSim, WorkerStall};
pub use sim::{Ctx, IdleReport, ProcId, RunOutcome, Scheduler, Simulation, TimerHandle, Wakeup};
pub use time::{SimDuration, SimTime};
pub use trace::Trace;
