//! Conservative parallel discrete-event execution over sharded worlds.
//!
//! The sequential executor ([`Simulation`]) dispatches every event on one
//! thread, so host wall-time grows linearly with the size of the simulated
//! machine. This module runs N independent `Simulation`s — *shards* — in
//! barrier-synchronous lookahead windows: each window `[T, T + lookahead)`
//! is drained by every shard independently (in parallel across worker
//! threads), then the cross-shard messages produced during the window are
//! exchanged and injected at the barrier in a deterministic global order
//! `(deliver_time, src_shard, outbox index)`.
//!
//! Safety of the window relies on the classic conservative-PDES argument:
//! every cross-shard message carries at least `lookahead` of simulated
//! latency, so a message sent at `t ∈ [T, T + L)` delivers at `t + latency ≥
//! T + L` — strictly after the window — and injection at the barrier can
//! never schedule into a shard's past.
//!
//! Determinism: the shard partition and the merge order are fixed by the
//! configuration, not by the worker count. Workers only change *which OS
//! thread* calls `run_until` on a shard; per-shard event order, outbox drain
//! order, and barrier injection order are identical for every worker count,
//! so the global (merged) trace is bit-identical whether the engine runs on
//! 1 thread or N.

use std::sync::mpsc;
use std::time::Instant;

use crate::sim::{IdleReport, Scheduler, Simulation};
use crate::time::{SimDuration, SimTime};

/// A cross-shard message drained from a shard's outbox at a window barrier.
#[derive(Debug)]
pub struct OutMsg<M> {
    /// Absolute simulated delivery time. Must be at least `lookahead` after
    /// the instant the message was produced; the engine asserts it lands
    /// strictly after the window that produced it.
    pub deliver_at: SimTime,
    /// Index of the destination shard.
    pub dst_shard: usize,
    /// The message payload.
    pub msg: M,
}

/// World state that can participate in sharded execution.
///
/// A shard is a full [`Simulation`] over one `ShardWorld`; the world decides
/// which of its activity crosses shard boundaries and parks it in an outbox
/// instead of acting on it locally.
pub trait ShardWorld: Send + Sized + 'static {
    /// Cross-shard message type.
    type Msg: Send + 'static;

    /// Drain the messages this shard produced for other shards since the
    /// last barrier. The order of the returned vector must be a
    /// deterministic function of the shard's own execution (it feeds the
    /// global merge order).
    fn take_outbox(&mut self) -> Vec<OutMsg<Self::Msg>>;

    /// Deliver a message produced by another shard. Runs as an injected
    /// event at the message's `deliver_at` instant.
    fn deliver(&mut self, s: &mut Scheduler<Self>, msg: Self::Msg);
}

/// Counters the sharded engine keeps about its own execution, for the
/// `pdes_campaign` report and CI regression visibility.
#[derive(Debug, Clone, Default)]
pub struct PdesStats {
    /// Lookahead windows executed.
    pub windows: u64,
    /// Cross-shard messages exchanged at barriers.
    pub msgs_bridged: u64,
    /// Cumulative host wall-clock (ns) between the first worker finishing a
    /// window and the last one arriving at the barrier — an approximate
    /// load-imbalance signal. Zero when running single-threaded.
    pub barrier_stall_ns: u64,
    /// Activities dispatched by each shard over the whole run (events +
    /// process resumes), indexed by shard.
    pub events_per_shard: Vec<u64>,
}

/// One barrier round handed to a worker: run every owned shard up to
/// `deadline` after applying the injections (local shard index, delivery
/// time, message), already in global merge order.
struct Round<M> {
    deadline: SimTime,
    inject: Vec<(usize, SimTime, M)>,
}

/// What a worker reports back at the barrier.
struct RoundResult<M> {
    /// `(global src shard, outbox index, message)` for every message the
    /// owned shards produced this window.
    msgs: Vec<(usize, usize, OutMsg<M>)>,
    /// Earliest pending event across the owned shards, if any.
    next: Option<SimTime>,
}

/// Apply one round to a chunk of shards: inject, drain the window, collect
/// outboxes and the earliest next event. `base` is the global index of
/// `shards[0]`. This single function is the whole per-window algorithm; the
/// single-threaded and multi-worker paths both call it, which is what makes
/// the worker count semantically invisible.
fn run_round<W: ShardWorld>(
    shards: &mut [Simulation<W>],
    base: usize,
    round: Round<W::Msg>,
) -> RoundResult<W::Msg> {
    for (li, at, msg) in round.inject {
        shards[li].schedule_at(at, move |w: &mut W, s| w.deliver(s, msg));
    }
    let mut msgs = Vec::new();
    let mut next: Option<SimTime> = None;
    for (li, sim) in shards.iter_mut().enumerate() {
        let _ = sim.run_until(round.deadline);
        for (idx, m) in sim.world().take_outbox().into_iter().enumerate() {
            assert!(
                m.deliver_at > round.deadline,
                "cross-shard message at {:?} violates the lookahead window ending at {:?}",
                m.deliver_at,
                round.deadline
            );
            msgs.push((base + li, idx, m));
        }
        if let Some(t) = sim.next_event_time() {
            next = Some(next.map_or(t, |n| n.min(t)));
        }
    }
    RoundResult { msgs, next }
}

/// Earliest pending event across a chunk of shards.
fn probe<W: ShardWorld>(shards: &[Simulation<W>]) -> Option<SimTime> {
    shards.iter().filter_map(Simulation::next_event_time).min()
}

/// A barrier-synchronous sharded simulation.
pub struct ShardedSim<W: ShardWorld> {
    shards: Vec<Simulation<W>>,
    lookahead: SimDuration,
    workers: usize,
    stats: PdesStats,
}

impl<W: ShardWorld> ShardedSim<W> {
    /// Build a sharded engine over `shards` with the given `lookahead`
    /// (must be ≥ 1 ns) executed by `workers` threads (clamped to
    /// `[1, shards.len()]`).
    pub fn new(shards: Vec<Simulation<W>>, lookahead: SimDuration, workers: usize) -> Self {
        assert!(!shards.is_empty(), "a sharded sim needs at least one shard");
        assert!(lookahead.as_ns() >= 1, "lookahead must be at least 1 ns");
        let workers = workers.clamp(1, shards.len());
        ShardedSim {
            shards,
            lookahead,
            workers,
            stats: PdesStats::default(),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads the run loop will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Access shard `i` (for setup: spawning processes, world inspection).
    pub fn shard(&self, i: usize) -> &Simulation<W> {
        &self.shards[i]
    }

    /// Counters accumulated by [`ShardedSim::run_to_idle`].
    pub fn stats(&self) -> &PdesStats {
        &self.stats
    }

    /// Consume the engine, returning the shards (for post-run analysis).
    pub fn into_shards(self) -> Vec<Simulation<W>> {
        self.shards
    }

    /// Run windows until every shard is idle and no cross-shard messages
    /// remain in flight. Returns one [`IdleReport`] per shard.
    pub fn run_to_idle(&mut self) -> Vec<IdleReport> {
        if self.workers <= 1 {
            self.run_single();
        } else {
            self.run_parallel();
        }
        self.stats.events_per_shard = self
            .shards
            .iter()
            .map(Simulation::events_dispatched)
            .collect();
        self.shards
            .iter_mut()
            .map(|s| match s.run_until(SimTime::ZERO) {
                crate::sim::RunOutcome::Idle(r) => r,
                // Cannot happen: the run loop only exits when every shard
                // reported no pending events.
                crate::sim::RunOutcome::DeadlineReached => {
                    unreachable!("shard not idle after run loop")
                }
            })
            .collect()
    }

    /// Pick the next window start from shard-reported next-event times and
    /// the pending message batch, and turn the batch into per-shard
    /// injection lists in global merge order. Returns `None` at quiescence.
    #[allow(clippy::type_complexity)]
    fn plan_window(
        &mut self,
        next: Option<SimTime>,
        mut msgs: Vec<(usize, usize, OutMsg<W::Msg>)>,
    ) -> Option<(SimTime, Vec<Vec<(usize, SimTime, W::Msg)>>)> {
        let msg_min = msgs.iter().map(|(_, _, m)| m.deliver_at).min();
        let t = match (next, msg_min) {
            (None, None) => return None,
            (a, b) => a.into_iter().chain(b).min().expect("one is Some"),
        };
        let deadline = SimTime::from_ns(t.as_ns() + self.lookahead.as_ns() - 1);
        // The deterministic global merge order: delivery time, then source
        // shard, then the source's own outbox order.
        msgs.sort_by_key(|(src, idx, m)| (m.deliver_at, *src, *idx));
        let mut inject: Vec<Vec<(usize, SimTime, W::Msg)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (_, _, m) in msgs {
            assert!(m.dst_shard < inject.len(), "message to unknown shard");
            inject[m.dst_shard].push((m.dst_shard, m.deliver_at, m.msg));
        }
        self.stats.windows += 1;
        Some((deadline, inject))
    }

    /// Single-threaded run loop: the same window algorithm, executed inline.
    fn run_single(&mut self) {
        let mut next = probe(&self.shards);
        let mut msgs = Vec::new();
        loop {
            let Some((deadline, mut inject)) = self.plan_window(next, std::mem::take(&mut msgs))
            else {
                break;
            };
            // One chunk owning every shard: local index == global index.
            let round = Round {
                deadline,
                inject: inject.drain(..).flatten().collect(),
            };
            let res = run_round(&mut self.shards, 0, round);
            self.stats.msgs_bridged += res.msgs.len() as u64;
            next = res.next;
            msgs = res.msgs;
        }
    }

    /// Multi-worker run loop: contiguous chunks of shards per worker, one
    /// round-trip of `Round`/`RoundResult` messages per window.
    fn run_parallel(&mut self) {
        let n = self.shards.len();
        let chunk = n.div_ceil(self.workers);
        // Chunk boundaries, so global → (worker, local) mapping is cheap.
        let bases: Vec<usize> = (0..n).step_by(chunk).collect();
        let mut pending_next: Option<SimTime> = None;
        let mut pending_msgs: Vec<(usize, usize, OutMsg<W::Msg>)> = Vec::new();
        let lookahead = self.lookahead;
        let stats = &mut self.stats;
        let shard_count = n;
        let mut chunks: Vec<&mut [Simulation<W>]> = self.shards.chunks_mut(chunk).collect();
        std::thread::scope(|scope| {
            let mut to_workers = Vec::new();
            let mut from_workers = Vec::new();
            for (wi, shards) in chunks.drain(..).enumerate() {
                let (tx_round, rx_round) = mpsc::channel::<Round<W::Msg>>();
                let (tx_res, rx_res) = mpsc::channel::<RoundResult<W::Msg>>();
                let base = bases[wi];
                scope.spawn(move || {
                    // Report initial next-event times before the first window.
                    let first = RoundResult {
                        msgs: Vec::new(),
                        next: probe(shards),
                    };
                    if tx_res.send(first).is_err() {
                        return;
                    }
                    while let Ok(round) = rx_round.recv() {
                        let res = run_round(shards, base, round);
                        if tx_res.send(res).is_err() {
                            break;
                        }
                    }
                });
                to_workers.push(tx_round);
                from_workers.push(rx_res);
            }
            loop {
                // Barrier: gather every worker's result. The stall metric is
                // the wall time between the first result landing and the
                // last; with in-order receives it is approximate, but a
                // badly imbalanced window still shows up clearly.
                let mut first_at: Option<Instant> = None;
                for rx in &from_workers {
                    let res = rx.recv().expect("sharded worker exited early");
                    if first_at.is_none() {
                        first_at = Some(Instant::now());
                    }
                    pending_msgs.extend(res.msgs);
                    if let Some(t) = res.next {
                        pending_next = Some(pending_next.map_or(t, |n| n.min(t)));
                    }
                }
                if let Some(at) = first_at {
                    stats.barrier_stall_ns += at.elapsed().as_nanos() as u64;
                }
                stats.msgs_bridged += pending_msgs.len() as u64;
                // Plan the next window (inline: `self` is mutably borrowed
                // by the worker chunks, so reimplement the tiny planner on
                // the captured pieces).
                let msg_min = pending_msgs.iter().map(|(_, _, m)| m.deliver_at).min();
                let t = match (pending_next.take(), msg_min) {
                    (None, None) => break, // quiescent: drop senders, workers exit
                    (a, b) => a.into_iter().chain(b).min().expect("one is Some"),
                };
                let deadline = SimTime::from_ns(t.as_ns() + lookahead.as_ns() - 1);
                let mut msgs = std::mem::take(&mut pending_msgs);
                msgs.sort_by_key(|(src, idx, m)| (m.deliver_at, *src, *idx));
                let mut inject: Vec<Vec<(usize, SimTime, W::Msg)>> =
                    (0..to_workers.len()).map(|_| Vec::new()).collect();
                for (_, _, m) in msgs {
                    assert!(m.dst_shard < shard_count, "message to unknown shard");
                    let wi = m.dst_shard / chunk;
                    inject[wi].push((m.dst_shard - bases[wi], m.deliver_at, m.msg));
                }
                stats.windows += 1;
                for (tx, inj) in to_workers.iter().zip(inject) {
                    tx.send(Round {
                        deadline,
                        inject: inj,
                    })
                    .expect("sharded worker exited early");
                }
            }
            drop(to_workers);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy shard world: messages bounce round-robin across shards with a
    /// fixed 10 ns latency, each shard logging what it saw.
    struct PingWorld {
        id: usize,
        n_shards: usize,
        log: Vec<(u64, u32)>,
        outbox: Vec<OutMsg<u32>>,
    }

    impl ShardWorld for PingWorld {
        type Msg = u32;
        fn take_outbox(&mut self) -> Vec<OutMsg<u32>> {
            std::mem::take(&mut self.outbox)
        }
        fn deliver(&mut self, s: &mut Scheduler<Self>, msg: u32) {
            self.log.push((s.now().as_ns(), msg));
            if msg < 25 {
                self.outbox.push(OutMsg {
                    deliver_at: s.now() + SimDuration::from_ns(10),
                    dst_shard: (self.id + 1) % self.n_shards,
                    msg: msg + 1,
                });
            }
        }
    }

    fn run_ping(n_shards: usize, workers: usize) -> (Vec<Vec<(u64, u32)>>, PdesStats) {
        let shards: Vec<Simulation<PingWorld>> = (0..n_shards)
            .map(|id| {
                Simulation::new(PingWorld {
                    id,
                    n_shards,
                    log: Vec::new(),
                    outbox: Vec::new(),
                })
            })
            .collect();
        // Seed: shard 0 emits the first message at t = 5.
        shards[0].schedule_in(SimDuration::from_ns(5), |w: &mut PingWorld, s| {
            w.outbox.push(OutMsg {
                deliver_at: s.now() + SimDuration::from_ns(10),
                dst_shard: 1 % w.n_shards,
                msg: 0,
            });
        });
        let mut sharded = ShardedSim::new(shards, SimDuration::from_ns(10), workers);
        let reports = sharded.run_to_idle();
        assert!(reports.iter().all(IdleReport::all_finished));
        let stats = sharded.stats().clone();
        let logs = sharded
            .into_shards()
            .into_iter()
            .map(|s| s.world().log.clone())
            .collect();
        (logs, stats)
    }

    #[test]
    fn messages_bounce_across_shards() {
        let (logs, stats) = run_ping(3, 1);
        // 26 deliveries (msg 0..=25), spread round-robin starting at shard 1.
        let total: usize = logs.iter().map(Vec::len).sum();
        assert_eq!(total, 26);
        assert_eq!(logs[1][0], (15, 0));
        assert_eq!(logs[2][0], (25, 1));
        assert!(stats.windows > 0);
        assert_eq!(stats.msgs_bridged, 26);
        assert_eq!(stats.events_per_shard.len(), 3);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let (one, _) = run_ping(4, 1);
        let (two, _) = run_ping(4, 2);
        let (four, _) = run_ping(4, 4);
        assert_eq!(one, two);
        assert_eq!(one, four);
    }

    #[test]
    fn single_shard_runs_without_bridging() {
        // One shard: every "cross-shard" hop is a self-send, still legal.
        let (logs, stats) = run_ping(1, 1);
        assert_eq!(logs[0].len(), 26);
        assert_eq!(stats.barrier_stall_ns, 0);
    }
}
