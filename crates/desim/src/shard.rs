//! Asynchronous conservative parallel discrete-event execution (Chandy–Misra
//! style) over sharded worlds.
//!
//! The sequential executor ([`Simulation`]) dispatches every event on one
//! thread, so host wall-time grows linearly with the size of the simulated
//! machine. This module runs N independent `Simulation`s — *shards* — in
//! parallel, each advancing **independently** to its *earliest input time*
//! (EIT): the minimum over incoming cross-shard links of `peer frontier +
//! that link's latency`. There is no global barrier and no shared window
//! clock; a shard ahead of its neighbors keeps executing as long as its EIT
//! permits.
//!
//! ## The protocol
//!
//! Each shard `i` publishes a **frontier** `F_i` — a monotone promise that it
//! will never again execute anything (and therefore never send anything)
//! before `F_i`. Because every message from `i` to `j` carries at least the
//! per-link lookahead `L[i][j]` of simulated latency, shard `j` may safely
//! execute everything *strictly below* `EIT_j = min_i (F_i + L[i][j])`.
//! Messages travel through per-directed-link SPSC mailboxes
//! ([`crate::spsc`]); a producer pushes **before** it publishes the frontier
//! covering the send (Release), and a consumer reads frontiers (Acquire)
//! **before** draining its mailboxes, so any message below the consumer's
//! computed EIT is already visible when it drains.
//!
//! An idle shard cannot stall its neighbors: with no events of its own, its
//! frontier becomes its own EIT, which grows as *its* inputs advance — the
//! classic null-message avalanche, propagated here as frontier bumps at
//! memory speed rather than as queued null events.
//!
//! ## Determinism
//!
//! Simulated outcomes are a function of the shard partition, never of the
//! worker count or host timing:
//!
//! * Buffered cross-shard messages are injected **only at exact time
//!   boundaries**: the shard runs strictly below the next delivery time `t`,
//!   then injects every buffered message at `t` in `(deliver_at, src_shard,
//!   seq)` order. Since `t < EIT`, the batch is complete — no later-arriving
//!   message can land at `t` — so both the batch and its order are pure
//!   functions of the simulation state.
//! * A shard's clock only ever settles on executed-event times: run segments
//!   are issued only when an event exists below the bound, so the final
//!   per-shard clocks (and the [`IdleReport`]s) are pacing-independent.
//! * A single-shard configuration has `EIT = ∞` and executes as one
//!   uninterrupted run — byte-for-byte the sequential engine.
//!
//! ## Termination
//!
//! Global quiescence is detected with a double scan over per-shard monotone
//! counters: every shard quiescent (no local events, no buffered messages)
//! and `Σ sent == Σ absorbed` across two identical scans. `sent` is bumped
//! before the mailbox push and `absorbed` only at a step boundary after the
//! drain is reflected in the quiescent flag, so an in-flight message always
//! holds the sums apart.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::sim::{IdleReport, Scheduler, Simulation};
use crate::spsc;
use crate::time::{SimDuration, SimTime};

/// A cross-shard message drained from a shard's outbox.
#[derive(Debug)]
pub struct OutMsg<M> {
    /// Absolute simulated delivery time. Must carry at least the latency
    /// matrix entry for its link past the sender's published frontier; the
    /// engine asserts this on every routed message.
    pub deliver_at: SimTime,
    /// Index of the destination shard.
    pub dst_shard: usize,
    /// The message payload.
    pub msg: M,
}

/// World state that can participate in sharded execution.
///
/// A shard is a full [`Simulation`] over one `ShardWorld`; the world decides
/// which of its activity crosses shard boundaries and parks it in an outbox
/// instead of acting on it locally.
pub trait ShardWorld: Send + Sized + 'static {
    /// Cross-shard message type.
    type Msg: Send + 'static;

    /// Move the messages this shard produced for other shards since the
    /// last drain into `into` (e.g. via [`Vec::append`], which keeps both
    /// buffers' capacity — the engine reuses `into` for the whole run). The
    /// order appended must be a deterministic function of the shard's own
    /// execution: it feeds the global `(deliver_at, src_shard, seq)` order.
    fn drain_outbox(&mut self, into: &mut Vec<OutMsg<Self::Msg>>);

    /// Deliver a message produced by another shard. Runs as an injected
    /// event at the message's `deliver_at` instant.
    fn deliver(&mut self, s: &mut Scheduler<Self>, msg: Self::Msg);
}

/// Per-worker idle accounting: where a worker's wall-clock went while it had
/// no executable work (split by back-off phase).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStall {
    /// Wall ns spent in the busy-spin phase of idle streaks.
    pub spin_ns: u64,
    /// Wall ns spent in the yield phase (streak outlasted the spin budget).
    pub yield_ns: u64,
    /// Idle streaks entered (a streak ends at the next productive pass).
    pub stalls: u64,
    /// `thread::yield_now` calls issued.
    pub yields: u64,
}

/// Counters the sharded engine keeps about its own execution, for the
/// `pdes_campaign` report and CI regression visibility.
#[derive(Debug, Clone, Default)]
pub struct PdesStats {
    /// Run segments issued across all shards (each is one `run_until` over
    /// an interval the sync protocol proved safe).
    pub rounds: u64,
    /// Cross-shard messages routed through the per-link mailboxes.
    pub msgs_bridged: u64,
    /// Frontier advances published by shards that neither executed nor
    /// received anything that pass — the null-message traffic equivalent.
    pub frontier_bumps: u64,
    /// Idle-time accounting per worker thread, indexed by worker.
    pub worker_stalls: Vec<WorkerStall>,
    /// Activities dispatched by each shard over the whole run (events +
    /// process resumes), indexed by shard.
    pub events_per_shard: Vec<u64>,
}

/// A buffered cross-shard message: the wire envelope that defines the global
/// injection order `(deliver_at, src_shard, seq)`.
struct Envelope<M> {
    at: u64,
    src: u32,
    seq: u64,
    msg: M,
}

impl<M> Envelope<M> {
    fn key(&self) -> (u64, u32, u64) {
        (self.at, self.src, self.seq)
    }
}

impl<M> PartialEq for Envelope<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<M> Eq for Envelope<M> {}
impl<M> PartialOrd for Envelope<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Envelope<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// A frontier counter alone on its cache line: frontiers are the hottest
/// cross-thread state in the engine, and false sharing between neighbors
/// would serialize exactly the reads the design makes independent.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// State shared between workers (and with [`PdesMonitor`]).
struct Shared {
    /// Published frontier per shard (ns).
    frontier: Vec<PaddedU64>,
    /// Messages pushed into mailboxes, per source shard. Bumped *before*
    /// the push (see the termination argument in the module docs).
    sent: Vec<AtomicU64>,
    /// Messages drained *and reflected in the quiescent flag*, per
    /// destination shard. Bumped only at a step boundary.
    absorbed: Vec<AtomicU64>,
    /// Shard has no local events and no buffered messages, as of its last
    /// step boundary.
    quiescent: Vec<AtomicBool>,
    /// Mailbox depth per directed link (`src * n + dst`); advisory, for the
    /// deadlock-watchdog dump.
    depth: Vec<AtomicU64>,
    /// Global termination flag.
    done: AtomicBool,
}

/// Introspection handle for deadlock watchdogs: a snapshot of every shard's
/// frontier, quiescence, message accounting, and mailbox depths. Cheap to
/// clone and safe to read while the engine runs.
#[derive(Clone)]
pub struct PdesMonitor {
    shared: Arc<Shared>,
    n: usize,
}

impl PdesMonitor {
    /// True once the engine has detected global quiescence.
    pub fn is_done(&self) -> bool {
        self.shared.done.load(Ordering::Acquire)
    }

    /// Human-readable dump of per-shard frontiers and per-link mailbox
    /// depths — what a watchdog prints when a run fails to reach idle.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for i in 0..self.n {
            let f = self.shared.frontier[i].0.load(Ordering::Acquire);
            let _ = writeln!(
                out,
                "shard {i}: frontier={} quiescent={} sent={} absorbed={}",
                if f == u64::MAX {
                    "inf".to_string()
                } else {
                    format!("{f}ns")
                },
                self.shared.quiescent[i].load(Ordering::Acquire),
                self.shared.sent[i].load(Ordering::Acquire),
                self.shared.absorbed[i].load(Ordering::Acquire),
            );
        }
        for src in 0..self.n {
            for dst in 0..self.n {
                let d = self.shared.depth[src * self.n + dst].load(Ordering::Acquire);
                if d > 0 {
                    let _ = writeln!(out, "mailbox {src}->{dst}: {d} queued");
                }
            }
        }
        out
    }
}

/// Everything one shard needs at run time; owned by exactly one worker.
struct Slot<W: ShardWorld> {
    id: usize,
    sim: Simulation<W>,
    /// Mailbox receivers, indexed by source shard (`None` at `id`).
    rx: Vec<Option<spsc::Receiver<Envelope<W::Msg>>>>,
    /// Mailbox senders, indexed by destination shard (`None` at `id`).
    tx: Vec<Option<spsc::Sender<Envelope<W::Msg>>>>,
    /// Next sequence number per destination shard (self included).
    seq: Vec<u64>,
    /// Messages received (or self-sent) but not yet injectable.
    pending: BinaryHeap<Reverse<Envelope<W::Msg>>>,
    /// Reused outbox drain buffer (capacity persists across the run).
    scratch: Vec<OutMsg<W::Msg>>,
    /// Last published frontier value.
    last_frontier: u64,
    /// Exclusive upper bound of the last issued run segment: every executed
    /// event is strictly below it, so nothing may ever be scheduled below it.
    run_bound: u64,
    /// Last computed quiescence, mirrored into `Shared` on change.
    quiet: bool,
    published_quiet: bool,
    // Slot-local statistics, aggregated after the run.
    rounds: u64,
    bumps: u64,
    sent: u64,
}

/// Unproductive passes a worker busy-spins before falling back to
/// `thread::yield_now` (which keeps single-CPU hosts live).
const SPIN_PASSES: u32 = 64;

/// An asynchronous conservative sharded simulation.
pub struct ShardedSim<W: ShardWorld> {
    slots: Vec<Slot<W>>,
    shared: Arc<Shared>,
    /// Flattened per-pair lookahead matrix, `lat[src * n + dst]` in ns.
    /// `u64::MAX` declares "no such link" (excluded from EIT; sends assert).
    lat: Vec<u64>,
    workers: usize,
    pin: bool,
    stats: PdesStats,
}

impl<W: ShardWorld> ShardedSim<W> {
    /// Build a sharded engine over `shards` with a full per-pair lookahead
    /// matrix: `link_latency_ns[src][dst]` is the minimum simulated latency
    /// any message from `src` carries to `dst`. Off-diagonal entries must be
    /// ≥ 1 ns; `u64::MAX` means "src never sends to dst" and removes the
    /// link from dst's EIT (the engine asserts if such a message appears).
    /// The diagonal bounds self-sends through the outbox the same way.
    /// Executed by `workers` threads (clamped to `[1, shards.len()]`).
    pub fn new(shards: Vec<Simulation<W>>, link_latency_ns: Vec<Vec<u64>>, workers: usize) -> Self {
        assert!(!shards.is_empty(), "a sharded sim needs at least one shard");
        let n = shards.len();
        assert_eq!(link_latency_ns.len(), n, "latency matrix must be n x n");
        let mut lat = Vec::with_capacity(n * n);
        for row in &link_latency_ns {
            assert_eq!(row.len(), n, "latency matrix must be n x n");
            lat.extend_from_slice(row);
        }
        for (i, &l) in lat.iter().enumerate() {
            assert!(
                l >= 1,
                "lookahead {}->{} must be at least 1 ns (or u64::MAX for no link)",
                i / n,
                i % n
            );
        }
        let workers = workers.clamp(1, n);
        let shared = Arc::new(Shared {
            frontier: (0..n).map(|_| PaddedU64(AtomicU64::new(0))).collect(),
            sent: (0..n).map(|_| AtomicU64::new(0)).collect(),
            absorbed: (0..n).map(|_| AtomicU64::new(0)).collect(),
            quiescent: (0..n).map(|_| AtomicBool::new(false)).collect(),
            depth: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
            done: AtomicBool::new(false),
        });
        // One SPSC mailbox per directed cross-shard pair. The worker owning
        // the source shard is the only producer and the worker owning the
        // destination the only consumer, so the SPSC contract holds for any
        // (static, contiguous) shard-to-worker assignment.
        type RxMat<M> = Vec<Vec<Option<spsc::Receiver<Envelope<M>>>>>;
        type TxMat<M> = Vec<Vec<Option<spsc::Sender<Envelope<M>>>>>;
        let mut rx_mat: RxMat<W::Msg> = (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut tx_mat: TxMat<W::Msg> = (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for src in 0..n {
            for dst in 0..n {
                if src != dst && lat[src * n + dst] != u64::MAX {
                    let (tx, rx) = spsc::pair();
                    tx_mat[src][dst] = Some(tx);
                    rx_mat[dst][src] = Some(rx);
                }
            }
        }
        let slots = shards
            .into_iter()
            .zip(rx_mat.into_iter().zip(tx_mat))
            .enumerate()
            .map(|(id, (sim, (rx, tx)))| Slot {
                id,
                sim,
                rx,
                tx,
                seq: vec![0; n],
                pending: BinaryHeap::new(),
                scratch: Vec::new(),
                last_frontier: 0,
                run_bound: 0,
                quiet: false,
                published_quiet: false,
                rounds: 0,
                bumps: 0,
                sent: 0,
            })
            .collect();
        ShardedSim {
            slots,
            shared,
            lat,
            workers,
            pin: false,
            stats: PdesStats::default(),
        }
    }

    /// Convenience constructor for a uniform lookahead: every pair
    /// (self-sends included) promises at least `lookahead` of latency.
    pub fn with_uniform_lookahead(
        shards: Vec<Simulation<W>>,
        lookahead: SimDuration,
        workers: usize,
    ) -> Self {
        assert!(lookahead.as_ns() >= 1, "lookahead must be at least 1 ns");
        let n = shards.len();
        let matrix = vec![vec![lookahead.as_ns(); n]; n];
        Self::new(shards, matrix, workers)
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.slots.len()
    }

    /// Worker threads the run loop will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Pin each worker thread to a distinct allowed host CPU (when the host
    /// grants enough of them). No-op at one worker, which runs on the
    /// caller's thread.
    pub fn pin_workers(&mut self, enable: bool) {
        self.pin = enable;
    }

    /// Access shard `i` (for setup: spawning processes, world inspection).
    pub fn shard(&self, i: usize) -> &Simulation<W> {
        &self.slots[i].sim
    }

    /// Counters accumulated by [`ShardedSim::run_to_idle`].
    pub fn stats(&self) -> &PdesStats {
        &self.stats
    }

    /// Introspection handle for watchdogs; remains valid while the engine
    /// runs on other threads.
    pub fn monitor(&self) -> PdesMonitor {
        PdesMonitor {
            shared: Arc::clone(&self.shared),
            n: self.slots.len(),
        }
    }

    /// Consume the engine, returning the shards (for post-run analysis).
    pub fn into_shards(self) -> Vec<Simulation<W>> {
        self.slots.into_iter().map(|s| s.sim).collect()
    }

    /// Run every shard to global quiescence: no local events anywhere and no
    /// cross-shard messages in flight. Returns one [`IdleReport`] per shard.
    pub fn run_to_idle(&mut self) -> Vec<IdleReport> {
        let n = self.slots.len();
        // Reset the sync state for this run (frontiers may only ratchet
        // *within* a run; new work spawned between runs starts a new epoch).
        self.shared.done.store(false, Ordering::SeqCst);
        for i in 0..n {
            self.shared.frontier[i].0.store(0, Ordering::SeqCst);
            self.shared.quiescent[i].store(false, Ordering::SeqCst);
        }
        for s in &mut self.slots {
            s.last_frontier = 0;
            s.run_bound = 0;
            s.quiet = false;
            s.published_quiet = false;
        }
        self.stats.worker_stalls.clear();

        let shared = &self.shared;
        let lat = &self.lat;
        if self.workers <= 1 {
            let stall = worker_loop(&mut self.slots, shared, lat, n, None);
            self.stats.worker_stalls.push(stall);
        } else {
            let pin_to: Vec<Option<usize>> = if self.pin {
                let cpus = crate::affinity::allowed_cpus();
                (0..self.workers).map(|wi| cpus.get(wi).copied()).collect()
            } else {
                vec![None; self.workers]
            };
            let chunk = n.div_ceil(self.workers);
            let chunks: Vec<&mut [Slot<W>]> = self.slots.chunks_mut(chunk).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .zip(&pin_to)
                    .map(|(slots, &pin)| {
                        scope.spawn(move || {
                            // A panicking worker (lookahead violation, world
                            // bug) must release its peers before unwinding,
                            // or the scope join would hang.
                            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                worker_loop(slots, shared, lat, n, pin)
                            }));
                            match r {
                                Ok(stall) => stall,
                                Err(p) => {
                                    shared.done.store(true, Ordering::SeqCst);
                                    std::panic::resume_unwind(p)
                                }
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    let stall = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
                    self.stats.worker_stalls.push(stall);
                }
            });
        }

        self.stats.rounds = self.slots.iter().map(|s| s.rounds).sum();
        self.stats.msgs_bridged = self.slots.iter().map(|s| s.sent).sum();
        self.stats.frontier_bumps = self.slots.iter().map(|s| s.bumps).sum();
        self.stats.events_per_shard = self
            .slots
            .iter()
            .map(|s| s.sim.events_dispatched())
            .collect();
        self.slots
            .iter_mut()
            .map(|s| match s.sim.run_until(SimTime::ZERO) {
                crate::sim::RunOutcome::Idle(r) => r,
                // Cannot happen: termination detection proved every shard
                // quiescent with no messages in flight.
                crate::sim::RunOutcome::DeadlineReached => {
                    unreachable!("shard {} not idle after termination", s.id)
                }
            })
            .collect()
    }
}

/// Drive a chunk of shards until global termination. Returns this worker's
/// idle accounting.
fn worker_loop<W: ShardWorld>(
    slots: &mut [Slot<W>],
    shared: &Shared,
    lat: &[u64],
    n: usize,
    pin: Option<usize>,
) -> WorkerStall {
    if let Some(cpu) = pin {
        let _ = crate::affinity::pin_current_thread(cpu);
    }
    let mut stall = WorkerStall::default();
    let mut spins: u32 = 0;
    let mut idle_mark: Option<Instant> = None;
    while !shared.done.load(Ordering::Acquire) {
        let mut progress = false;
        for slot in slots.iter_mut() {
            progress |= step(slot, shared, lat, n);
        }
        if progress {
            spins = 0;
            idle_mark = None;
            continue;
        }
        // Nothing executable on any owned shard. If everything we own is
        // quiescent, probe for global termination; otherwise (or if the
        // probe fails) back off — frontier bumps still happen every pass,
        // so the null-message ratchet keeps running underneath.
        if slots.iter().all(|s| s.quiet) && try_terminate(shared, n) {
            shared.done.store(true, Ordering::SeqCst);
            break;
        }
        let now = Instant::now();
        if let Some(prev) = idle_mark {
            let d = now.duration_since(prev).as_nanos() as u64;
            if spins <= SPIN_PASSES {
                stall.spin_ns += d;
            } else {
                stall.yield_ns += d;
            }
        } else {
            stall.stalls += 1;
        }
        idle_mark = Some(now);
        spins = spins.saturating_add(1);
        if spins <= SPIN_PASSES {
            std::hint::spin_loop();
        } else {
            stall.yields += 1;
            std::thread::yield_now();
        }
    }
    stall
}

/// One scheduling pass over one shard: read frontiers, drain mailboxes,
/// execute everything provably safe, publish the new frontier. Returns true
/// iff the pass drained, injected, or executed anything (frontier bumps
/// alone do not count — they must not hold workers in the hot spin phase).
fn step<W: ShardWorld>(slot: &mut Slot<W>, shared: &Shared, lat: &[u64], n: usize) -> bool {
    let me = slot.id;
    // 1. Earliest input time from the peer frontiers. The Acquire load pairs
    //    with the Release publish below: a peer's sends below its published
    //    frontier are already in our mailboxes when we read that frontier.
    let mut eit = u64::MAX;
    for k in 0..n {
        if k == me {
            continue;
        }
        let l = lat[k * n + me];
        if l == u64::MAX {
            continue;
        }
        eit = eit.min(
            shared.frontier[k]
                .0
                .load(Ordering::Acquire)
                .saturating_add(l),
        );
    }
    // 2. Drain the per-link mailboxes into the pending heap (after the
    //    frontier reads — never before, or a message could slip between).
    let mut drained = 0u64;
    for src in 0..n {
        let Some(rx) = &slot.rx[src] else { continue };
        while let Some(env) = rx.pop() {
            shared.depth[src * n + me].fetch_sub(1, Ordering::Relaxed);
            slot.pending.push(Reverse(env));
            drained += 1;
        }
    }
    // 3. Execute everything strictly below EIT. Buffered deliveries are
    //    injected at their exact instants; local runs stop at the next
    //    delivery boundary, the self-send horizon, and EIT.
    let mut ran = false;
    let self_l = lat[me * n + me];
    loop {
        route_outbox(slot, shared, lat, n);
        let next_local = slot.sim.next_event_time().map(|t| t.as_ns());
        let next_msg = slot.pending.peek().map(|r| r.0.at);
        let start = match (next_local, next_msg) {
            (None, None) => break,
            (a, b) => a.into_iter().chain(b).min().expect("one is Some"),
        };
        if start >= eit {
            break;
        }
        if next_msg == Some(start) {
            // Everything below `start` has executed and `start < eit`, so
            // the batch at `start` is complete and injection order is the
            // heap's `(deliver_at, src_shard, seq)` order.
            while let Some(r) = slot.pending.peek() {
                if r.0.at != start {
                    break;
                }
                let env = slot.pending.pop().expect("peeked").0;
                let at = SimTime::from_ns(env.at);
                let msg = env.msg;
                slot.sim
                    .schedule_at(at, move |w: &mut W, s| w.deliver(s, msg));
            }
            ran = true;
            continue;
        }
        // Local events lead. Run them up to (exclusively) the next delivery
        // boundary, EIT, or the self-send horizon: a world that can route
        // messages to itself must not outrun its own lookahead, or a self
        // message produced mid-segment could land inside the segment.
        let bound = eit
            .min(next_msg.unwrap_or(u64::MAX))
            .min(start.saturating_add(self_l));
        debug_assert!(bound > start);
        let _ = slot.sim.run_until(SimTime::from_ns(bound - 1));
        slot.run_bound = bound;
        slot.rounds += 1;
        ran = true;
    }
    // 4. Publish the new frontier: the earliest instant this shard could
    //    still execute anything — its next local event, its next buffered
    //    delivery, or (if those are later or absent) its EIT. Monotone by
    //    construction; `max` guards the invariant regardless.
    let next_local = slot.sim.next_event_time().map(|t| t.as_ns());
    let next_msg = slot.pending.peek().map(|r| r.0.at);
    slot.quiet = next_local.is_none() && next_msg.is_none();
    let f = [next_local, next_msg, Some(eit)]
        .into_iter()
        .flatten()
        .min()
        .expect("eit is always present")
        .max(slot.last_frontier);
    if f > slot.last_frontier {
        if !ran && drained == 0 {
            slot.bumps += 1;
        }
        slot.last_frontier = f;
        shared.frontier[me].0.store(f, Ordering::Release);
    }
    // 5. Step boundary: mirror quiescence, then account the drains. The
    //    termination detector depends on this order (see module docs): once
    //    a scan sees the drained count in `absorbed`, it must also see this
    //    shard non-quiescent if the drain left unexecuted work — the reverse
    //    order opens a window where sent == absorbed with a stale quiescent
    //    flag, and a double scan in that window drops the pending message.
    if slot.quiet != slot.published_quiet {
        slot.published_quiet = slot.quiet;
        shared.quiescent[me].store(slot.quiet, Ordering::SeqCst);
    }
    if drained > 0 {
        shared.absorbed[me].fetch_add(drained, Ordering::SeqCst);
    }
    ran || drained > 0
}

/// Route this shard's outbox: self-sends into its own pending heap, remote
/// sends into the per-link mailboxes (push first, `sent` already bumped —
/// the frontier publish that covers them comes after, in `step`).
fn route_outbox<W: ShardWorld>(slot: &mut Slot<W>, shared: &Shared, lat: &[u64], n: usize) {
    slot.sim.world().drain_outbox(&mut slot.scratch);
    if slot.scratch.is_empty() {
        return;
    }
    let me = slot.id;
    for m in slot.scratch.drain(..) {
        let dst = m.dst_shard;
        assert!(dst < n, "message to unknown shard {dst}");
        let l = lat[me * n + dst];
        assert_ne!(
            l,
            u64::MAX,
            "shard {me} sent to shard {dst}, but the latency matrix declares no such link"
        );
        let at = m.deliver_at.as_ns();
        assert!(
            at >= slot.last_frontier.saturating_add(l),
            "cross-shard message {me}->{dst} at {at} ns violates the per-link \
             lookahead ({l} ns past frontier {} ns)",
            slot.last_frontier
        );
        // The frontier check alone is too weak for self-sends: mid-segment
        // the frontier lags the clock, so a world violating the self-link
        // contract (deliver_at >= produce time + self lookahead) could pass
        // it and schedule into the already-executed segment — `schedule_at`
        // has no past-time check. Every segment is bounded by
        // `start + self_l`, so an honored contract always lands at or past
        // the segment's exclusive bound; anything below it is a violation.
        assert!(
            dst != me || at >= slot.run_bound,
            "self message on shard {me} at {at} ns lands inside the executed \
             segment (bound {} ns): the world violated its self-link \
             lookahead of {l} ns",
            slot.run_bound
        );
        let env = Envelope {
            at,
            src: me as u32,
            seq: slot.seq[dst],
            msg: m.msg,
        };
        slot.seq[dst] += 1;
        if dst == me {
            slot.pending.push(Reverse(env));
        } else {
            // `sent` before the push: an in-flight message must always hold
            // `sent > absorbed` for the termination detector.
            shared.sent[me].fetch_add(1, Ordering::SeqCst);
            shared.depth[me * n + dst].fetch_add(1, Ordering::Relaxed);
            slot.tx[dst].as_ref().expect("cross-shard sender").push(env);
            slot.sent += 1;
        }
    }
}

/// Double-scan termination detection: two identical observations of "every
/// shard quiescent and `Σ sent == Σ absorbed`" prove global quiescence (the
/// counters are monotone, and a drained-but-unaccounted message keeps the
/// sums apart — see the module docs).
fn try_terminate(shared: &Shared, n: usize) -> bool {
    let scan = || -> Option<(u64, u64)> {
        for i in 0..n {
            if !shared.quiescent[i].load(Ordering::SeqCst) {
                return None;
            }
        }
        let mut sent = 0u64;
        let mut absorbed = 0u64;
        for i in 0..n {
            sent += shared.sent[i].load(Ordering::SeqCst);
            absorbed += shared.absorbed[i].load(Ordering::SeqCst);
        }
        Some((sent, absorbed))
    };
    match (scan(), scan()) {
        (Some(a), Some(b)) => a == b && a.0 == a.1,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy shard world: messages bounce round-robin across shards with a
    /// fixed 10 ns latency, each shard logging what it saw.
    struct PingWorld {
        id: usize,
        n_shards: usize,
        log: Vec<(u64, u32)>,
        outbox: Vec<OutMsg<u32>>,
    }

    impl ShardWorld for PingWorld {
        type Msg = u32;
        fn drain_outbox(&mut self, into: &mut Vec<OutMsg<u32>>) {
            into.append(&mut self.outbox);
        }
        fn deliver(&mut self, s: &mut Scheduler<Self>, msg: u32) {
            self.log.push((s.now().as_ns(), msg));
            if msg < 25 {
                self.outbox.push(OutMsg {
                    deliver_at: s.now() + SimDuration::from_ns(10),
                    dst_shard: (self.id + 1) % self.n_shards,
                    msg: msg + 1,
                });
            }
        }
    }

    fn run_ping(n_shards: usize, workers: usize) -> (Vec<Vec<(u64, u32)>>, PdesStats) {
        let shards: Vec<Simulation<PingWorld>> = (0..n_shards)
            .map(|id| {
                Simulation::new(PingWorld {
                    id,
                    n_shards,
                    log: Vec::new(),
                    outbox: Vec::new(),
                })
            })
            .collect();
        // Seed: shard 0 emits the first message at t = 5.
        shards[0].schedule_in(SimDuration::from_ns(5), |w: &mut PingWorld, s| {
            w.outbox.push(OutMsg {
                deliver_at: s.now() + SimDuration::from_ns(10),
                dst_shard: 1 % w.n_shards,
                msg: 0,
            });
        });
        let mut sharded =
            ShardedSim::with_uniform_lookahead(shards, SimDuration::from_ns(10), workers);
        let reports = sharded.run_to_idle();
        assert!(reports.iter().all(IdleReport::all_finished));
        let stats = sharded.stats().clone();
        let logs = sharded
            .into_shards()
            .into_iter()
            .map(|s| s.world().log.clone())
            .collect();
        (logs, stats)
    }

    #[test]
    fn messages_bounce_across_shards() {
        let (logs, stats) = run_ping(3, 1);
        // 26 deliveries (msg 0..=25), spread round-robin starting at shard 1.
        let total: usize = logs.iter().map(Vec::len).sum();
        assert_eq!(total, 26);
        assert_eq!(logs[1][0], (15, 0));
        assert_eq!(logs[2][0], (25, 1));
        assert!(stats.rounds > 0);
        assert_eq!(stats.msgs_bridged, 26);
        assert_eq!(stats.events_per_shard.len(), 3);
        assert_eq!(stats.worker_stalls.len(), 1);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let (one, _) = run_ping(4, 1);
        let (two, _) = run_ping(4, 2);
        let (four, _) = run_ping(4, 4);
        assert_eq!(one, two);
        assert_eq!(one, four);
    }

    #[test]
    fn single_shard_runs_without_bridging() {
        // One shard: every "cross-shard" hop is a self-send, which stays in
        // the shard's own pending heap and never touches a mailbox.
        let (logs, stats) = run_ping(1, 1);
        assert_eq!(logs[0].len(), 26);
        assert_eq!(stats.msgs_bridged, 0);
        assert_eq!(stats.frontier_bumps, 0, "no peers to bump for");
    }

    /// A world with only local timer chains: no outbox traffic at all.
    struct LocalWorld {
        fired: Vec<u64>,
    }

    impl ShardWorld for LocalWorld {
        type Msg = ();
        fn drain_outbox(&mut self, _into: &mut Vec<OutMsg<()>>) {}
        fn deliver(&mut self, _s: &mut Scheduler<Self>, _msg: ()) {
            unreachable!("no cross-shard traffic in this world");
        }
    }

    fn chain(sim: &Simulation<LocalWorld>, period_ns: u64, remaining: u32) {
        sim.schedule_in(SimDuration::from_ns(period_ns), move |w, s| {
            tick(w, s, period_ns, remaining);
        });
        fn tick(w: &mut LocalWorld, s: &mut Scheduler<LocalWorld>, period_ns: u64, left: u32) {
            w.fired.push(s.now().as_ns());
            if left > 0 {
                s.schedule_in(SimDuration::from_ns(period_ns), move |w, s| {
                    tick(w, s, period_ns, left - 1);
                });
            }
        }
    }

    #[test]
    fn zero_cross_traffic_advances_via_frontier_bumps() {
        // Shard 1 finishes at t=50 while shard 0 still has 1000 ns of work;
        // with a 10 ns lookahead, shard 0 can only advance because idle
        // shard 1 keeps bumping its frontier (the null-message role). A
        // barrier-free engine that forgot the bumps would deadlock here —
        // the test completing *is* the assertion, plus the bump counter.
        for workers in [1usize, 2] {
            let shards: Vec<Simulation<LocalWorld>> = (0..2)
                .map(|_| Simulation::new(LocalWorld { fired: Vec::new() }))
                .collect();
            chain(&shards[0], 100, 9); // fires at 100, 200, ..., 1000
            chain(&shards[1], 50, 0); // fires at 50 only
            let mut sharded =
                ShardedSim::with_uniform_lookahead(shards, SimDuration::from_ns(10), workers);
            let reports = sharded.run_to_idle();
            assert_eq!(reports[0].now, SimTime::from_ns(1000));
            assert_eq!(reports[1].now, SimTime::from_ns(50));
            let stats = sharded.stats().clone();
            assert_eq!(stats.msgs_bridged, 0);
            assert!(
                stats.frontier_bumps > 0,
                "idle shard must bump its frontier ({workers} workers)"
            );
            let shards = sharded.into_shards();
            assert_eq!(shards[0].world().fired.len(), 10);
            assert_eq!(shards[1].world().fired.len(), 1);
        }
    }

    #[test]
    fn monitor_dumps_frontiers_after_the_run() {
        let shards: Vec<Simulation<LocalWorld>> = (0..2)
            .map(|_| Simulation::new(LocalWorld { fired: Vec::new() }))
            .collect();
        chain(&shards[0], 10, 3);
        let mut sharded =
            ShardedSim::with_uniform_lookahead(shards, SimDuration::from_ns(5), workers_for_test());
        let monitor = sharded.monitor();
        assert!(!monitor.is_done());
        sharded.run_to_idle();
        assert!(monitor.is_done());
        let dump = monitor.dump();
        assert!(dump.contains("shard 0:"));
        assert!(dump.contains("shard 1:"));
        assert!(!dump.contains("mailbox"), "no messages may be in flight");
    }

    fn workers_for_test() -> usize {
        1
    }
}
