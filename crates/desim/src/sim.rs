//! The deterministic discrete-event executor.
//!
//! Two kinds of simulated activity coexist:
//!
//! * **Events** — boxed closures over the world state `W`, used for hardware
//!   models (links freeing, messages arriving, interrupts firing). They run
//!   to completion and never block.
//! * **Processes** — cooperative OS threads, used for software (VORX
//!   subprocesses, host programs). Process code is written in direct blocking
//!   style: it parks and is resumed by events or other processes. Exactly one
//!   simulated activity executes at a time, so the simulation is fully
//!   deterministic despite using real threads.
//!
//! Determinism contract: the event queue is ordered by `(time, sequence
//! number)`; ties fire in scheduling order. Any randomness must come from an
//! explicitly seeded RNG stored in `W`.
//!
//! # Hot-path design
//!
//! The executor⇄process handoff is a single shared [`Baton`] per process — a
//! `turn` word flipped with release/acquire ordering plus
//! `thread::park`/`unpark` — so a context switch moves no heap data and takes
//! no channel locks. Same-instant wakes (the common case in protocol code:
//! `wake` + `park` chains at one timestamp) bypass the binary heap through a
//! FIFO *lane*, making zero-delay scheduling O(1). Simulated time lives in an
//! atomic mirror ([`SimInner::now_ns`]) so [`Ctx::now`] is lock-free, and
//! [`Scheduler`] buffers are pooled so steady-state event dispatch allocates
//! nothing.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::thread::{JoinHandle, Thread};

use parking_lot::{Mutex, MutexGuard};

use crate::time::{SimDuration, SimTime};

/// Identifies a simulated process for the lifetime of a [`Simulation`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// Token delivered to a parked process when it is woken.
///
/// Wakeups are *advisory*: a process may be woken for a reason other than the
/// one it parked for (e.g. a stale timer). Blocking code must therefore
/// re-check its condition in a loop, condition-variable style.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Wakeup(pub u64);

impl Wakeup {
    /// Wakeup used for process start and generic notifications.
    pub const START: Wakeup = Wakeup(0);
    /// Wakeup used by [`Ctx::sleep`] timers.
    pub const TIMER: Wakeup = Wakeup(u64::MAX);
}

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>) + Send>;
type ProcFn<W> = Box<dyn FnOnce(Ctx<W>) + Send + 'static>;

/// Handle to a cancellable scheduled event (see
/// [`Scheduler::schedule_cancellable_in`]). Cancelling disarms the event: it
/// will neither run nor advance simulated time when its slot comes up, so a
/// protocol timeout that was disarmed (e.g. the awaited ack arrived) leaves
/// no trace in the simulated timeline. Cheap to clone; cancelling any clone
/// cancels the event.
#[derive(Clone, Debug)]
pub struct TimerHandle(Arc<AtomicBool>);

impl TimerHandle {
    /// Disarm the event. Idempotent; a no-op if the event already ran.
    pub fn cancel(&self) {
        self.0.store(true, AtomicOrdering::Relaxed);
    }

    /// True if [`TimerHandle::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(AtomicOrdering::Relaxed)
    }
}

enum Pending<W> {
    Run(EventFn<W>),
    Wake(ProcId, Wakeup),
    /// A cancellable event: skipped (without advancing time) if the flag is
    /// set by the time it reaches the head of the queue.
    Cancellable(Arc<AtomicBool>, EventFn<W>),
}

impl<W> Pending<W> {
    fn cancelled(&self) -> bool {
        matches!(self, Pending::Cancellable(flag, _) if flag.load(AtomicOrdering::Relaxed))
    }
}

struct QEntry<W> {
    t: SimTime,
    seq: u64,
    act: Pending<W>,
}

impl<W> PartialEq for QEntry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl<W> Eq for QEntry<W> {}
impl<W> PartialOrd for QEntry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for QEntry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest (time, seq)
        // at the top.
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

/// `Baton::turn`: the process may run.
const TURN_PROC: u32 = 0;
/// `Baton::turn`: the executor may run.
const TURN_EXEC: u32 = 1;

/// `Baton::report`: the process parked and can be resumed again.
const REPORT_PARKED: u32 = 0;
/// `Baton::report`: the process body returned.
const REPORT_FINISHED: u32 = 1;
/// `Baton::report`: the process body panicked; `panic_msg` is set.
const REPORT_PANICKED: u32 = 2;

/// The executor⇄process handoff cell. Exactly one side is running at any
/// moment; `turn` says which. A handoff is: write your payload (`token` or
/// `report`) with relaxed stores, flip `turn` with a release store (which
/// publishes the payload), and unpark the peer. The waiter loops on an
/// acquire load of `turn` around `thread::park()`, which makes it immune to
/// spurious unparks. No allocation, no channel, no lock on the hot path.
struct Baton {
    /// Whose turn it is: [`TURN_PROC`] or [`TURN_EXEC`].
    turn: AtomicU32,
    /// Wakeup token payload; written by the executor before flipping `turn`.
    token: AtomicU64,
    /// What the process reported when handing back: `REPORT_*`.
    report: AtomicU32,
    /// Set (before a `turn` flip) to make the process unwind instead of
    /// resuming; used when the simulation is dropped with parked processes.
    kill: AtomicBool,
    /// The executor thread to unpark when handing the turn back. Updated by
    /// the executor on each resume (the run loop may move between threads).
    exec: Mutex<Option<Thread>>,
    /// Panic message, set before reporting `REPORT_PANICKED`.
    panic_msg: Mutex<Option<String>>,
}

impl Baton {
    fn new() -> Self {
        Baton {
            turn: AtomicU32::new(TURN_EXEC),
            token: AtomicU64::new(0),
            report: AtomicU32::new(REPORT_PARKED),
            kill: AtomicBool::new(false),
            exec: Mutex::new(None),
            panic_msg: Mutex::new(None),
        }
    }

    /// Process side: hand the turn to the executor and wake it.
    fn yield_to_exec(&self, report: u32) {
        self.report.store(report, AtomicOrdering::Relaxed);
        self.turn.store(TURN_EXEC, AtomicOrdering::Release);
        if let Some(t) = self.exec.lock().as_ref() {
            t.unpark();
        }
    }

    /// Process side: wait until the executor hands the turn over. Returns the
    /// wakeup token; unwinds with [`Killed`] if the simulation is tearing
    /// down.
    fn await_turn(&self) -> Wakeup {
        while self.turn.load(AtomicOrdering::Acquire) != TURN_PROC {
            std::thread::park();
        }
        if self.kill.load(AtomicOrdering::Relaxed) {
            resume_unwind(Box::new(Killed));
        }
        Wakeup(self.token.load(AtomicOrdering::Relaxed))
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ProcState {
    Parked,
    Running,
    Finished,
}

struct ProcSlot {
    name: String,
    state: ProcState,
    baton: Arc<Baton>,
    /// The process's OS thread, for `unpark`.
    thread: Thread,
    join: Option<JoinHandle<()>>,
}

struct Core<W> {
    now: SimTime,
    seq: u64,
    /// Activities executed so far (events run + process resumes), for
    /// load accounting in the sharded engine and campaign reports.
    dispatched: u64,
    /// Future events, ordered by `(time, seq)`.
    queue: BinaryHeap<QEntry<W>>,
    /// Events scheduled *at the current instant*, FIFO. Every entry's time is
    /// `now`, so ordering within the lane is by `seq` alone, and `push` is
    /// O(1) instead of a heap insert. Invariant: any heap entry at `t == now`
    /// was pushed before `now` advanced to `t` and therefore has a smaller
    /// `seq` than every lane entry; the pop logic relies on this.
    lane: VecDeque<(u64, Pending<W>)>,
    procs: Vec<Option<ProcSlot>>,
}

impl<W> Core<W> {
    fn push(&mut self, t: SimTime, act: Pending<W>) {
        debug_assert!(t >= self.now, "scheduled event in the past");
        let seq = self.seq;
        self.seq += 1;
        if t == self.now {
            self.lane.push_back((seq, act));
        } else {
            self.queue.push(QEntry { t, seq, act });
        }
    }

    fn slot_mut(&mut self, pid: ProcId) -> &mut ProcSlot {
        self.procs
            .get_mut(pid.0 as usize)
            .and_then(Option::as_mut)
            .expect("unknown ProcId")
    }
}

/// Recycled `Scheduler` buffers (see [`SimInner::pool`]).
struct SchBufs<W> {
    pending: Vec<(SimTime, Pending<W>)>,
    spawns: Vec<SpawnReq<W>>,
}

impl<W> Default for SchBufs<W> {
    fn default() -> Self {
        SchBufs {
            pending: Vec::new(),
            spawns: Vec::new(),
        }
    }
}

/// How many `SchBufs` the pool keeps; beyond this, buffers are dropped.
const POOL_CAP: usize = 4;

struct SimInner<W> {
    core: Mutex<Core<W>>,
    world: Mutex<W>,
    /// Lock-free mirror of `Core::now` (ns). Written only by the executor
    /// while it holds the core lock; read by [`Ctx::now`] /
    /// [`Simulation::now`] without locking.
    now_ns: AtomicU64,
    next_pid: Arc<AtomicU32>,
    /// Pool of spent `Scheduler` buffers, so steady-state event dispatch and
    /// `Ctx::with` reuse their allocations instead of growing fresh `Vec`s.
    pool: Mutex<Vec<SchBufs<W>>>,
}

/// Marker payload used to unwind process threads when the simulation is
/// dropped while they are still parked.
struct Killed;

struct SpawnReq<W> {
    name: String,
    at: SimTime,
    f: ProcFn<W>,
    pid: ProcId,
}

/// Collects actions scheduled from inside an event callback or a
/// [`Ctx::with`] block; they are committed to the event queue when the block
/// ends. Scheduling is therefore transactional with respect to the world
/// lock, which keeps lock ordering trivial.
pub struct Scheduler<W> {
    now: SimTime,
    pending: Vec<(SimTime, Pending<W>)>,
    spawns: Vec<SpawnReq<W>>,
    /// Simulation-global process-id allocator (shared with `SimInner`).
    next_pid: Arc<AtomicU32>,
}

impl<W: Send + 'static> Scheduler<W> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Run `f` against the world after `d` has elapsed.
    pub fn schedule_in<F>(&mut self, d: SimDuration, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + Send + 'static,
    {
        self.pending.push((self.now + d, Pending::Run(Box::new(f))));
    }

    /// Like [`Scheduler::schedule_in`], but returns a [`TimerHandle`] that
    /// can disarm the event before it fires. Meant for protocol timeouts:
    /// the common case is that the awaited reply arrives and the timeout is
    /// cancelled, and a cancelled event must not drag the simulated clock
    /// out to its (never-meaningful) fire time.
    pub fn schedule_cancellable_in<F>(&mut self, d: SimDuration, f: F) -> TimerHandle
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + Send + 'static,
    {
        let flag = Arc::new(AtomicBool::new(false));
        self.pending.push((
            self.now + d,
            Pending::Cancellable(Arc::clone(&flag), Box::new(f)),
        ));
        TimerHandle(flag)
    }

    /// Wake `pid` with `token` after `d` has elapsed.
    pub fn wake_in(&mut self, d: SimDuration, pid: ProcId, token: Wakeup) {
        self.pending.push((self.now + d, Pending::Wake(pid, token)));
    }

    /// Wake `pid` with `token` at the current instant (ordered after all
    /// actions already scheduled for this instant).
    pub fn wake(&mut self, pid: ProcId, token: Wakeup) {
        self.wake_in(SimDuration::ZERO, pid, token);
    }

    /// Spawn a new process whose body starts running after `d`.
    /// Returns its id immediately so it can be recorded in world state.
    pub fn spawn_in<F>(&mut self, d: SimDuration, name: impl Into<String>, f: F) -> ProcId
    where
        F: FnOnce(Ctx<W>) + Send + 'static,
    {
        let pid = ProcId(self.next_pid.fetch_add(1, AtomicOrdering::Relaxed));
        self.spawns.push(SpawnReq {
            name: name.into(),
            at: self.now + d,
            f: Box::new(f),
            pid,
        });
        pid
    }

    /// Spawn a new process that starts at the current instant.
    pub fn spawn<F>(&mut self, name: impl Into<String>, f: F) -> ProcId
    where
        F: FnOnce(Ctx<W>) + Send + 'static,
    {
        self.spawn_in(SimDuration::ZERO, name, f)
    }
}

/// Handle a process uses to interact with the simulation. Bound to the
/// process it was created for; do not move it to another simulated process.
pub struct Ctx<W> {
    inner: Arc<SimInner<W>>,
    pid: ProcId,
    baton: Arc<Baton>,
}

impl<W> Clone for Ctx<W> {
    fn clone(&self) -> Self {
        Ctx {
            inner: Arc::clone(&self.inner),
            pid: self.pid,
            baton: Arc::clone(&self.baton),
        }
    }
}

impl<W: Send + 'static> Ctx<W> {
    /// This process's id.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// Current simulated time. Lock-free: reads the executor-maintained
    /// atomic clock.
    pub fn now(&self) -> SimTime {
        SimTime::from_ns(self.inner.now_ns.load(AtomicOrdering::Acquire))
    }

    /// Access the world and scheduler without simulated time passing.
    ///
    /// Do not call other `Ctx` methods from inside `f` (the world lock is
    /// held) and do not park: `with` blocks are instantaneous.
    pub fn with<R>(&self, f: impl FnOnce(&mut W, &mut Scheduler<W>) -> R) -> R {
        let mut sch = scheduler(self.now(), &self.inner);
        let r = {
            let mut world = self.inner.world.lock();
            f(&mut world, &mut sch)
        };
        drain(&self.inner, sch);
        r
    }

    /// Park until woken. Returns the (advisory) wakeup token.
    pub fn park(&self) -> Wakeup {
        self.baton.yield_to_exec(REPORT_PARKED);
        self.baton.await_turn()
    }

    /// Advance this process's local time by `d` (modelling computation or a
    /// fixed-cost operation). Tolerates spurious wakeups: always sleeps the
    /// full duration.
    pub fn sleep(&self, d: SimDuration) {
        // The timer wake needs no world access: push it under the core lock
        // directly rather than paying for a scheduler round-trip.
        let deadline = {
            let mut core = self.inner.core.lock();
            let t = core.now + d;
            core.push(t, Pending::Wake(self.pid, Wakeup::TIMER));
            t
        };
        while self.now() < deadline {
            self.park();
        }
    }

    /// Park repeatedly until `cond` (evaluated against the world) yields
    /// `Some(r)`. The standard condition-loop: immune to spurious wakeups.
    pub fn wait_until<R>(&self, mut cond: impl FnMut(&mut W, &mut Scheduler<W>) -> Option<R>) -> R {
        loop {
            if let Some(r) = self.with(&mut cond) {
                return r;
            }
            self.park();
        }
    }
}

fn scheduler<W>(now: SimTime, inner: &Arc<SimInner<W>>) -> Scheduler<W> {
    let SchBufs { pending, spawns } = inner.pool.lock().pop().unwrap_or_default();
    Scheduler {
        now,
        pending,
        spawns,
        next_pid: Arc::clone(&inner.next_pid),
    }
}

/// Commit everything a `Scheduler` collected: create spawned process threads,
/// register them, and push all pending actions into the queue. Leaves the
/// scheduler's buffers empty (capacity retained) so the caller can reuse or
/// pool them. Takes no locks at all when nothing was scheduled.
fn commit<W: Send + 'static>(inner: &Arc<SimInner<W>>, sch: &mut Scheduler<W>) {
    if sch.pending.is_empty() && sch.spawns.is_empty() {
        return;
    }
    let mut started = Vec::with_capacity(sch.spawns.len());
    for req in sch.spawns.drain(..) {
        started.push(start_proc(inner, req));
    }
    let mut core = inner.core.lock();
    for (pid, at, slot) in started {
        let idx = pid.0 as usize;
        if core.procs.len() <= idx {
            core.procs.resize_with(idx + 1, || None);
        }
        assert!(core.procs[idx].is_none(), "ProcId reused");
        core.procs[idx] = Some(slot);
        core.push(at, Pending::Wake(pid, Wakeup::START));
    }
    for (t, act) in sch.pending.drain(..) {
        core.push(t, act);
    }
}

/// [`commit`], then hand the scheduler's buffers back to the pool.
fn drain<W: Send + 'static>(inner: &Arc<SimInner<W>>, mut sch: Scheduler<W>) {
    commit(inner, &mut sch);
    let Scheduler {
        pending, spawns, ..
    } = sch;
    let mut pool = inner.pool.lock();
    if pool.len() < POOL_CAP {
        pool.push(SchBufs { pending, spawns });
    }
}

fn start_proc<W: Send + 'static>(
    inner: &Arc<SimInner<W>>,
    req: SpawnReq<W>,
) -> (ProcId, SimTime, ProcSlot) {
    let baton = Arc::new(Baton::new());
    let ctx = Ctx {
        inner: Arc::clone(inner),
        pid: req.pid,
        baton: Arc::clone(&baton),
    };
    let thread_baton = Arc::clone(&baton);
    let f = req.f;
    let join = std::thread::Builder::new()
        .name(format!("sim:{}", req.name))
        .spawn(move || {
            let baton = thread_baton;
            // Wait for the initial resume before running the body.
            while baton.turn.load(AtomicOrdering::Acquire) != TURN_PROC {
                std::thread::park();
            }
            if baton.kill.load(AtomicOrdering::Relaxed) {
                return;
            }
            let report = match catch_unwind(AssertUnwindSafe(|| f(ctx))) {
                Ok(()) => REPORT_FINISHED,
                Err(payload) => {
                    if payload.downcast_ref::<Killed>().is_some() {
                        // Simulation is being torn down; exit quietly without
                        // handing the turn back (nobody is waiting for it).
                        return;
                    }
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".into());
                    *baton.panic_msg.lock() = Some(msg);
                    REPORT_PANICKED
                }
            };
            baton.yield_to_exec(report);
        })
        .expect("failed to spawn simulation process thread");
    let thread = join.thread().clone();
    (
        req.pid,
        req.at,
        ProcSlot {
            name: req.name,
            state: ProcState::Parked,
            baton,
            thread,
            join: Some(join),
        },
    )
}

/// Why a call to [`Simulation::run_until`] / [`Simulation::run_to_idle`]
/// returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// No events remain. Carries a report of processes still parked — a
    /// non-empty list after an application "finished" usually means deadlock.
    Idle(IdleReport),
    /// The time bound was reached with events still outstanding.
    DeadlineReached,
}

/// Snapshot of the simulation at quiescence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdleReport {
    /// Time of the last executed event.
    pub now: SimTime,
    /// Processes that are still parked (id, name).
    pub parked: Vec<(ProcId, String)>,
}

impl IdleReport {
    /// True iff every spawned process ran to completion.
    pub fn all_finished(&self) -> bool {
        self.parked.is_empty()
    }
}

/// A deterministic discrete-event simulation over world state `W`.
pub struct Simulation<W: Send + 'static> {
    inner: Arc<SimInner<W>>,
}

/// What the locked dequeue step handed the run loop to execute.
enum Next<W> {
    Run(EventFn<W>, SimTime),
    Wake(Arc<Baton>, Thread, ProcId, Wakeup),
}

impl<W: Send + 'static> Simulation<W> {
    /// Create a simulation owning `world`, at time zero.
    pub fn new(world: W) -> Self {
        Simulation {
            inner: Arc::new(SimInner {
                core: Mutex::new(Core {
                    now: SimTime::ZERO,
                    seq: 0,
                    dispatched: 0,
                    queue: BinaryHeap::new(),
                    lane: VecDeque::new(),
                    procs: Vec::new(),
                }),
                world: Mutex::new(world),
                now_ns: AtomicU64::new(0),
                next_pid: Arc::new(AtomicU32::new(0)),
                pool: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Current simulated time. Lock-free: reads the executor-maintained
    /// atomic clock.
    pub fn now(&self) -> SimTime {
        SimTime::from_ns(self.inner.now_ns.load(AtomicOrdering::Acquire))
    }

    /// Mutable access to the world between runs (inspection, setup).
    pub fn world(&self) -> MutexGuard<'_, W> {
        self.inner.world.lock()
    }

    /// Schedule and spawn from outside the run loop (setup).
    pub fn setup(&self, f: impl FnOnce(&mut W, &mut Scheduler<W>)) {
        let mut sch = self.mk_scheduler(self.now());
        {
            let mut w = self.inner.world.lock();
            f(&mut w, &mut sch);
        }
        drain(&self.inner, sch);
    }

    /// Spawn a process starting at the current time. Convenience wrapper
    /// around [`Simulation::setup`].
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> ProcId
    where
        F: FnOnce(Ctx<W>) + Send + 'static,
    {
        let mut sch = self.mk_scheduler(self.now());
        let pid = sch.spawn(name, f);
        drain(&self.inner, sch);
        pid
    }

    /// Schedule an event callback after `d`.
    pub fn schedule_in<F>(&self, d: SimDuration, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + Send + 'static,
    {
        let mut sch = self.mk_scheduler(self.now());
        sch.schedule_in(d, f);
        drain(&self.inner, sch);
    }

    fn mk_scheduler(&self, now: SimTime) -> Scheduler<W> {
        scheduler(now, &self.inner)
    }

    /// Run until no events remain.
    pub fn run_to_idle(&mut self) -> IdleReport {
        match self.run_until(SimTime::MAX) {
            RunOutcome::Idle(r) => r,
            RunOutcome::DeadlineReached => unreachable!("MAX deadline reached"),
        }
    }

    /// Run until no events remain or the next event is later than `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        // The run loop may be called from different threads across calls;
        // capture the current one once for the baton handoffs below.
        let me = std::thread::current();
        // One set of scheduler buffers serves every event callback this run
        // dispatches; per-event pool traffic would cost more than it saves.
        let mut bufs = self.inner.pool.lock().pop().unwrap_or_default();
        let outcome = 'run: loop {
            let next = {
                let mut core = self.inner.core.lock();
                // Inner loop so stale wakeups are skipped without bouncing
                // the core lock.
                loop {
                    // Discard disarmed timers before their timestamps are
                    // ever consulted: a cancelled event must neither advance
                    // the clock nor keep the simulation from going idle.
                    while core.queue.peek().is_some_and(|e| e.act.cancelled()) {
                        core.queue.pop();
                    }
                    // Does the same-instant lane or the heap fire next? Lane
                    // entries are all at `now`; a heap entry wins only if it
                    // is also at `now` with a smaller seq (pushed before time
                    // advanced here — see the `Core::lane` invariant).
                    let use_lane = match (core.lane.front(), core.queue.peek()) {
                        (Some(_), None) => true,
                        (Some(&(lane_seq, _)), Some(h)) => h.t > core.now || h.seq > lane_seq,
                        (None, Some(_)) => false,
                        (None, None) => break 'run RunOutcome::Idle(idle_report(&core)),
                    };
                    let act = if use_lane {
                        if core.now > deadline {
                            // Lane entries fire at `now`, which is already
                            // past the bound; time does not move.
                            break 'run RunOutcome::DeadlineReached;
                        }
                        core.lane.pop_front().expect("lane front").1
                    } else {
                        let t = core.queue.peek().expect("heap top").t;
                        if t > deadline {
                            core.now = deadline.max(core.now);
                            self.inner
                                .now_ns
                                .store(core.now.as_ns(), AtomicOrdering::Release);
                            break 'run RunOutcome::DeadlineReached;
                        }
                        let e = core.queue.pop().expect("peeked");
                        debug_assert!(e.t >= core.now, "time ran backwards");
                        core.now = e.t;
                        self.inner
                            .now_ns
                            .store(e.t.as_ns(), AtomicOrdering::Release);
                        e.act
                    };
                    match act {
                        Pending::Run(f) => {
                            core.dispatched += 1;
                            break Next::Run(f, core.now);
                        }
                        Pending::Cancellable(flag, f) => {
                            if flag.load(AtomicOrdering::Relaxed) {
                                // Cancelled same-instant (lane) entry: time
                                // is already `now`, just skip it.
                                continue;
                            }
                            core.dispatched += 1;
                            break Next::Run(f, core.now);
                        }
                        Pending::Wake(pid, token) => {
                            let slot = core.slot_mut(pid);
                            if slot.state == ProcState::Finished {
                                continue; // stale wakeup for a completed process
                            }
                            debug_assert_eq!(
                                slot.state,
                                ProcState::Parked,
                                "woke a running process"
                            );
                            slot.state = ProcState::Running;
                            let next = Next::Wake(
                                Arc::clone(&slot.baton),
                                slot.thread.clone(),
                                pid,
                                token,
                            );
                            core.dispatched += 1;
                            break next;
                        }
                    }
                }
            };
            match next {
                Next::Run(f, now) => {
                    let mut sch = Scheduler {
                        now,
                        pending: std::mem::take(&mut bufs.pending),
                        spawns: std::mem::take(&mut bufs.spawns),
                        next_pid: Arc::clone(&self.inner.next_pid),
                    };
                    {
                        let mut w = self.inner.world.lock();
                        f(&mut w, &mut sch);
                    }
                    commit(&self.inner, &mut sch);
                    bufs.pending = sch.pending;
                    bufs.spawns = sch.spawns;
                }
                Next::Wake(baton, thread, pid, token) => {
                    self.resume(&me, baton, thread, pid, token)
                }
            }
        };
        let mut pool = self.inner.pool.lock();
        if pool.len() < POOL_CAP {
            pool.push(bufs);
        }
        outcome
    }

    /// Hand the turn to `pid`'s thread, wait for it to hand back, and record
    /// how it yielded. The baton and thread handle were fetched under the
    /// same core lock that dequeued the wake, so the happy path (process
    /// parks again) costs one lock to re-mark it parked and nothing else.
    fn resume(&self, me: &Thread, baton: Arc<Baton>, thread: Thread, pid: ProcId, token: Wakeup) {
        *baton.exec.lock() = Some(me.clone());
        baton.token.store(token.0, AtomicOrdering::Relaxed);
        baton.turn.store(TURN_PROC, AtomicOrdering::Release);
        thread.unpark();
        while baton.turn.load(AtomicOrdering::Acquire) != TURN_EXEC {
            std::thread::park();
        }
        match baton.report.load(AtomicOrdering::Relaxed) {
            REPORT_PARKED => {
                self.inner.core.lock().slot_mut(pid).state = ProcState::Parked;
            }
            REPORT_FINISHED => {
                self.inner.core.lock().slot_mut(pid).state = ProcState::Finished;
            }
            _ => {
                // Panic path: only now is the process name needed, so the
                // clone happens here instead of on every resume.
                let name = {
                    let mut core = self.inner.core.lock();
                    let slot = core.slot_mut(pid);
                    slot.state = ProcState::Finished;
                    slot.name.clone()
                };
                let msg = baton
                    .panic_msg
                    .lock()
                    .take()
                    .unwrap_or_else(|| "<missing panic message>".into());
                panic!("simulated process '{name}' panicked: {msg}");
            }
        }
    }

    /// Names of processes that are still parked.
    pub fn parked_processes(&self) -> Vec<(ProcId, String)> {
        idle_report(&self.inner.core.lock()).parked
    }

    /// Time of the earliest pending activity, or `None` when idle. Disarmed
    /// (cancelled) timers at the head of the queue are discarded first, so
    /// the answer matches what `run_until` would execute next; same-instant
    /// lane entries report the current time. Used by the sharded engine to
    /// pick the next lookahead window.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let mut core = self.inner.core.lock();
        while core.queue.peek().is_some_and(|e| e.act.cancelled()) {
            core.queue.pop();
        }
        if !core.lane.is_empty() {
            return Some(core.now);
        }
        core.queue.peek().map(|e| e.t)
    }

    /// Total activities executed so far (event callbacks run plus process
    /// resumes). Monotone across `run_until` calls; the sharded engine
    /// reports it per shard as a load-balance signal.
    pub fn events_dispatched(&self) -> u64 {
        self.inner.core.lock().dispatched
    }

    /// Schedule an event callback at *absolute* simulated time `t`, which
    /// must not be in the past. The sharded engine uses this to inject
    /// cross-shard deliveries between lookahead windows; injection order at
    /// equal `t` is preserved by the queue's sequence numbers.
    pub fn schedule_at<F>(&self, t: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut Scheduler<W>) + Send + 'static,
    {
        let mut core = self.inner.core.lock();
        core.push(t, Pending::Run(Box::new(f)));
    }
}

fn idle_report<W>(core: &Core<W>) -> IdleReport {
    let parked = core
        .procs
        .iter()
        .enumerate()
        .filter_map(|(i, s)| {
            s.as_ref()
                .filter(|s| s.state == ProcState::Parked)
                .map(|s| (ProcId(i as u32), s.name.clone()))
        })
        .collect();
    IdleReport {
        now: core.now,
        parked,
    }
}

impl<W: Send + 'static> Drop for Simulation<W> {
    fn drop(&mut self) {
        let handles: Vec<JoinHandle<()>> = {
            let mut core = self.inner.core.lock();
            let mut handles = Vec::new();
            for slot in core.procs.iter_mut().flatten() {
                if slot.state != ProcState::Finished {
                    // The kill flag is published by the release flip of
                    // `turn`; the woken process unwinds instead of resuming.
                    slot.baton.kill.store(true, AtomicOrdering::Relaxed);
                    slot.baton.turn.store(TURN_PROC, AtomicOrdering::Release);
                    slot.thread.unpark();
                }
                if let Some(h) = slot.join.take() {
                    handles.push(h);
                }
            }
            handles
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct TestWorld {
        log: Vec<(u64, String)>,
        flag: bool,
        counter: u64,
    }

    impl TestWorld {
        fn log(&mut self, now: SimTime, msg: impl Into<String>) {
            self.log.push((now.as_ns(), msg.into()));
        }
    }

    #[test]
    fn events_fire_in_time_then_fifo_order() {
        let mut sim = Simulation::new(TestWorld::default());
        sim.schedule_in(SimDuration::from_ns(20), |w: &mut TestWorld, s| {
            w.log(s.now(), "b")
        });
        sim.schedule_in(SimDuration::from_ns(10), |w: &mut TestWorld, s| {
            w.log(s.now(), "a")
        });
        sim.schedule_in(SimDuration::from_ns(20), |w: &mut TestWorld, s| {
            w.log(s.now(), "c")
        });
        sim.run_to_idle();
        let w = sim.world();
        assert_eq!(
            w.log,
            vec![(10, "a".into()), (20, "b".into()), (20, "c".into())]
        );
    }

    #[test]
    fn nested_event_scheduling() {
        let mut sim = Simulation::new(TestWorld::default());
        sim.schedule_in(SimDuration::from_ns(5), |w: &mut TestWorld, s| {
            w.log(s.now(), "outer");
            s.schedule_in(SimDuration::from_ns(7), |w: &mut TestWorld, s| {
                w.log(s.now(), "inner");
            });
        });
        let report = sim.run_to_idle();
        assert_eq!(report.now, SimTime::from_ns(12));
        assert_eq!(
            sim.world().log,
            vec![(5, "outer".into()), (12, "inner".into())]
        );
    }

    #[test]
    fn process_sleep_advances_time() {
        let mut sim = Simulation::new(TestWorld::default());
        sim.spawn("sleeper", |ctx: Ctx<TestWorld>| {
            ctx.sleep(SimDuration::from_us(3));
            let now = ctx.now();
            ctx.with(|w, _| w.log(now, "woke"));
        });
        let report = sim.run_to_idle();
        assert!(report.all_finished());
        assert_eq!(sim.world().log, vec![(3_000, "woke".into())]);
    }

    #[test]
    fn wait_until_sees_event_updates() {
        let mut sim = Simulation::new(TestWorld::default());
        let pid = sim.spawn("waiter", |ctx: Ctx<TestWorld>| {
            ctx.wait_until(|w, _| if w.flag { Some(()) } else { None });
            let now = ctx.now();
            ctx.with(|w, _| w.log(now, "flagged"));
        });
        sim.schedule_in(SimDuration::from_us(7), move |w: &mut TestWorld, s| {
            w.flag = true;
            s.wake(pid, Wakeup::START);
        });
        let report = sim.run_to_idle();
        assert!(report.all_finished());
        assert_eq!(sim.world().log, vec![(7_000, "flagged".into())]);
    }

    #[test]
    fn spurious_wakeups_do_not_break_sleep_or_wait() {
        let mut sim = Simulation::new(TestWorld::default());
        let pid = sim.spawn("sleeper", |ctx: Ctx<TestWorld>| {
            ctx.sleep(SimDuration::from_us(10));
            assert_eq!(ctx.now(), SimTime::from_ns(10_000));
        });
        // Hammer the sleeper with early spurious wakeups.
        for i in 1..5u64 {
            sim.schedule_in(SimDuration::from_us(i), move |_w: &mut TestWorld, s| {
                s.wake(pid, Wakeup(99));
            });
        }
        assert!(sim.run_to_idle().all_finished());
    }

    #[test]
    fn processes_communicate_through_world() {
        let mut sim = Simulation::new(TestWorld::default());
        let consumer = sim.spawn("consumer", |ctx: Ctx<TestWorld>| {
            let got = ctx.wait_until(|w, _| (w.counter >= 3).then_some(w.counter));
            assert_eq!(got, 3);
        });
        sim.spawn("producer", move |ctx: Ctx<TestWorld>| {
            for _ in 0..3 {
                ctx.sleep(SimDuration::from_us(1));
                ctx.with(|w, s| {
                    w.counter += 1;
                    s.wake(consumer, Wakeup::START);
                });
            }
        });
        assert!(sim.run_to_idle().all_finished());
        assert_eq!(sim.now(), SimTime::from_ns(3_000));
    }

    #[test]
    fn deadlocked_process_reported_parked() {
        let mut sim = Simulation::new(TestWorld::default());
        sim.spawn("stuck", |ctx: Ctx<TestWorld>| {
            ctx.wait_until(|w, _| w.flag.then_some(())); // never set
        });
        let report = sim.run_to_idle();
        assert_eq!(report.parked.len(), 1);
        assert_eq!(report.parked[0].1, "stuck");
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(TestWorld::default());
        sim.schedule_in(SimDuration::from_us(10), |w: &mut TestWorld, s| {
            w.log(s.now(), "late")
        });
        let outcome = sim.run_until(SimTime::from_ns(5_000));
        assert_eq!(outcome, RunOutcome::DeadlineReached);
        assert_eq!(sim.now(), SimTime::from_ns(5_000));
        assert!(sim.world().log.is_empty());
        let report = sim.run_to_idle();
        assert_eq!(report.now, SimTime::from_ns(10_000));
        assert_eq!(sim.world().log.len(), 1);
    }

    #[test]
    fn processes_can_spawn_processes() {
        let mut sim = Simulation::new(TestWorld::default());
        sim.spawn("parent", |ctx: Ctx<TestWorld>| {
            ctx.sleep(SimDuration::from_us(1));
            ctx.with(|_, s| {
                s.spawn("child", |ctx: Ctx<TestWorld>| {
                    ctx.sleep(SimDuration::from_us(2));
                    let now = ctx.now();
                    ctx.with(|w, _| w.log(now, "child done"));
                });
            });
        });
        assert!(sim.run_to_idle().all_finished());
        assert_eq!(sim.world().log, vec![(3_000, "child done".into())]);
    }

    #[test]
    #[should_panic(expected = "simulated process 'bad' panicked")]
    fn process_panic_propagates_to_executor() {
        let mut sim = Simulation::new(TestWorld::default());
        sim.spawn("bad", |_ctx: Ctx<TestWorld>| {
            panic!("boom");
        });
        sim.run_to_idle();
    }

    #[test]
    fn dropping_simulation_with_parked_processes_does_not_hang() {
        let mut sim = Simulation::new(TestWorld::default());
        for i in 0..8 {
            sim.spawn(format!("p{i}"), |ctx: Ctx<TestWorld>| {
                ctx.wait_until(|w, _| w.flag.then_some(()));
            });
        }
        sim.run_to_idle();
        drop(sim); // must join all eight threads without deadlock
    }

    #[test]
    fn determinism_two_runs_identical_log() {
        fn run() -> Vec<(u64, String)> {
            let mut sim = Simulation::new(TestWorld::default());
            for i in 0..10u64 {
                sim.schedule_in(
                    SimDuration::from_ns(100 - i * 3),
                    move |w: &mut TestWorld, s| {
                        w.log(s.now(), format!("e{i}"));
                    },
                );
            }
            for i in 0..4u64 {
                sim.spawn(format!("p{i}"), move |ctx: Ctx<TestWorld>| {
                    ctx.sleep(SimDuration::from_ns(50 + i));
                    let now = ctx.now();
                    ctx.with(|w, _| w.log(now, format!("p{i}")));
                });
            }
            sim.run_to_idle();
            let w = sim.world();
            w.log.clone()
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn cancelled_timer_neither_fires_nor_advances_time() {
        let mut sim = Simulation::new(TestWorld::default());
        sim.setup(|_, s| {
            let h = s.schedule_cancellable_in(SimDuration::from_us(50), |w: &mut TestWorld, s| {
                w.log(s.now(), "timeout");
            });
            s.schedule_in(SimDuration::from_us(1), move |w: &mut TestWorld, s| {
                w.log(s.now(), "ack");
                h.cancel();
            });
        });
        let report = sim.run_to_idle();
        // Idle time is the ack, not the disarmed 50us timeout.
        assert_eq!(report.now, SimTime::from_ns(1_000));
        assert_eq!(sim.world().log, vec![(1_000, "ack".into())]);
    }

    #[test]
    fn uncancelled_timer_fires_normally() {
        let mut sim = Simulation::new(TestWorld::default());
        sim.setup(|_, s| {
            let h = s.schedule_cancellable_in(SimDuration::from_us(5), |w: &mut TestWorld, s| {
                w.log(s.now(), "timeout");
            });
            assert!(!h.is_cancelled());
        });
        let report = sim.run_to_idle();
        assert_eq!(report.now, SimTime::from_ns(5_000));
        assert_eq!(sim.world().log, vec![(5_000, "timeout".into())]);
    }

    #[test]
    fn same_instant_cancellation_is_honored() {
        // Cancel at the very instant the timer is due: the earlier-seq event
        // runs first and disarms it.
        let mut sim = Simulation::new(TestWorld::default());
        sim.setup(|_, s| {
            s.schedule_in(SimDuration::from_us(2), |w: &mut TestWorld, s| {
                let h = s.schedule_cancellable_in(SimDuration::ZERO, |w: &mut TestWorld, s| {
                    w.log(s.now(), "zero-delay timeout");
                });
                w.log(s.now(), "arm+cancel");
                h.cancel();
            });
        });
        sim.run_to_idle();
        assert_eq!(sim.world().log, vec![(2_000, "arm+cancel".into())]);
    }

    #[test]
    fn stale_wake_for_finished_process_is_ignored() {
        let mut sim = Simulation::new(TestWorld::default());
        let pid = sim.spawn("quick", |ctx: Ctx<TestWorld>| {
            ctx.sleep(SimDuration::from_ns(1));
        });
        sim.schedule_in(SimDuration::from_us(1), move |_w: &mut TestWorld, s| {
            s.wake(pid, Wakeup(7)); // fires long after 'quick' finished
        });
        assert!(sim.run_to_idle().all_finished());
    }
}

impl<W: Send + 'static> Simulation<W> {
    /// Run for `d` of simulated time from now (or until idle, whichever is
    /// first). Convenience over [`Simulation::run_until`].
    pub fn run_for(&mut self, d: SimDuration) -> RunOutcome {
        let deadline = self.now() + d;
        self.run_until(deadline)
    }
}

#[cfg(test)]
mod run_for_tests {
    use super::*;

    #[test]
    fn run_for_advances_by_the_duration() {
        let mut sim = Simulation::new(0u32);
        sim.schedule_in(SimDuration::from_us(50), |w: &mut u32, _| *w += 1);
        assert_eq!(
            sim.run_for(SimDuration::from_us(10)),
            RunOutcome::DeadlineReached
        );
        assert_eq!(sim.now(), SimTime::from_ns(10_000));
        assert_eq!(*sim.world(), 0);
        assert!(matches!(
            sim.run_for(SimDuration::from_us(100)),
            RunOutcome::Idle(_)
        ));
        assert_eq!(*sim.world(), 1);
    }
}

impl<W: Send + 'static> Ctx<W> {
    /// Spawn a sibling process from process context (sugar over
    /// [`Ctx::with`] + [`Scheduler::spawn`]).
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> ProcId
    where
        F: FnOnce(Ctx<W>) + Send + 'static,
    {
        let name = name.into();
        self.with(move |_, s| s.spawn(name, f))
    }
}

#[cfg(test)]
mod ctx_spawn_tests {
    use super::*;

    #[test]
    fn ctx_spawn_runs_the_child() {
        let mut sim = Simulation::new(0u32);
        sim.spawn("parent", |ctx: Ctx<u32>| {
            ctx.sleep(SimDuration::from_us(2));
            let parent = ctx.pid();
            let child = ctx.spawn("child", move |ctx: Ctx<u32>| {
                ctx.with(move |w, s| {
                    *w += 1;
                    s.wake(parent, Wakeup::START);
                });
            });
            // The child starts after we yield; wait for its effect.
            ctx.wait_until(|w, _| (*w == 1).then_some(()));
            let _ = child;
        });
        assert!(sim.run_to_idle().all_finished());
        assert_eq!(*sim.world(), 1);
    }
}
