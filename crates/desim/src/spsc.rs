//! Unbounded lock-free single-producer/single-consumer queue.
//!
//! The asynchronous sharded engine ([`crate::ShardedSim`]) keeps one of
//! these per *directed* cross-shard link: the worker that owns the source
//! shard is the only pusher and the worker that owns the destination shard
//! is the only popper, so the single-producer/single-consumer contract holds
//! by construction. The queue is a classic dummy-node linked list — `push`
//! is one allocation plus one `Release` store, `pop` is one `Acquire` load —
//! with no mutex, no condvar, and no spinning, which is what lets shards
//! exchange messages while both sides keep executing.
//!
//! The vendored `crossbeam` stand-in implements its channel as a
//! mutex+condvar ring (see `vendor/README.md`); it is deliberately *not*
//! used here — a blocking mailbox at every link would reintroduce the
//! barrier this engine exists to remove.

use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

struct Node<T> {
    next: AtomicPtr<Node<T>>,
    /// `None` only in the dummy node (and after a value is popped).
    val: Option<T>,
}

struct Inner<T> {
    /// Consumer side: points at the current dummy node; the value stream
    /// starts at `head.next`.
    head: AtomicPtr<Node<T>>,
    /// Producer side: the most recently pushed node.
    tail: AtomicPtr<Node<T>>,
    /// The queue owns `T`s in transit.
    _owns: PhantomData<T>,
}

// The raw pointers are only dereferenced under the SPSC discipline: `head`
// by the single consumer, `tail` by the single producer, `next` hand-off via
// Release/Acquire. Values merely move through, so `T: Send` suffices.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        let mut p = *self.head.get_mut();
        while !p.is_null() {
            // Safety: nodes between head and tail are exclusively ours now.
            let mut boxed = unsafe { Box::from_raw(p) };
            p = *boxed.next.get_mut();
        }
    }
}

/// The producer half. Not cloneable: exactly one producer may exist.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The consumer half. Not cloneable: exactly one consumer may exist.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Create a connected `(Sender, Receiver)` pair.
pub fn pair<T: Send>() -> (Sender<T>, Receiver<T>) {
    let dummy = Box::into_raw(Box::new(Node {
        next: AtomicPtr::new(ptr::null_mut()),
        val: None,
    }));
    let inner = Arc::new(Inner {
        head: AtomicPtr::new(dummy),
        tail: AtomicPtr::new(dummy),
        _owns: PhantomData,
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T: Send> Sender<T> {
    /// Append `v` to the queue. Never blocks.
    pub fn push(&self, v: T) {
        let node = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            val: Some(v),
        }));
        // Single producer: we are the only thread that moves `tail`.
        let prev = self.inner.tail.swap(node, Ordering::AcqRel);
        // Publish the node; the consumer's Acquire load of `next` pairs with
        // this store and makes the freshly written value visible.
        unsafe { (*prev).next.store(node, Ordering::Release) };
    }
}

impl<T: Send> Receiver<T> {
    /// Remove and return the oldest element, or `None` if the queue is
    /// currently empty. Never blocks.
    pub fn pop(&self) -> Option<T> {
        // Single consumer: we are the only thread that moves `head`.
        let head = self.inner.head.load(Ordering::Relaxed);
        let next = unsafe { (*head).next.load(Ordering::Acquire) };
        if next.is_null() {
            return None;
        }
        // Safety: `next` was fully initialized before the Release store that
        // published it; taking the value leaves it as the new dummy.
        let v = unsafe { (*next).val.take() };
        self.inner.head.store(next, Ordering::Relaxed);
        drop(unsafe { Box::from_raw(head) });
        Some(v.expect("SPSC node published without a value"))
    }

    /// True iff no element is currently queued (advisory: the producer may
    /// push concurrently).
    pub fn is_empty(&self) -> bool {
        let head = self.inner.head.load(Ordering::Relaxed);
        unsafe { (*head).next.load(Ordering::Acquire) }.is_null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_same_thread() {
        let (tx, rx) = pair::<u32>();
        assert!(rx.is_empty());
        for i in 0..100 {
            tx.push(i);
        }
        assert!(!rx.is_empty());
        for i in 0..100 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn cross_thread_stream() {
        let (tx, rx) = pair::<u64>();
        let n = 10_000u64;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                tx.push(i);
            }
        });
        let mut got = 0u64;
        while got < n {
            if let Some(v) = rx.pop() {
                assert_eq!(v, got, "SPSC reordered");
                got += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(rx.is_empty());
    }

    #[test]
    fn drop_releases_queued_values() {
        // Drop with values still queued: every element must be dropped once.
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (tx, rx) = pair::<D>();
        for _ in 0..5 {
            tx.push(D);
        }
        let _ = rx.pop(); // one popped and dropped
        drop(tx);
        drop(rx); // four queued, dropped by Inner::drop
        assert_eq!(DROPS.load(Ordering::Relaxed), 5);
    }
}
