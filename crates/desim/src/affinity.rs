//! Host CPU affinity: detection and worker pinning.
//!
//! Wall-clock parallel speedup needs parallel *hardware*, and the hardware a
//! process may actually use is its affinity mask, not the machine's core
//! count (containers and `taskset` routinely restrict it). This module
//! exposes the effective parallelism and lets the sharded engine pin its
//! workers to distinct allowed CPUs, one per worker, so shards stop
//! migrating between cores mid-run.
//!
//! Implemented against raw `sched_{get,set}affinity` on Linux — the symbols
//! come from the libc that `std` already links, so no new dependency is
//! required (see the offline-dependency policy in `vendor/README.md`). On
//! other platforms detection falls back to
//! [`std::thread::available_parallelism`] and pinning is a no-op.

/// Words in the fixed-size CPU mask (1024 CPUs, the kernel default).
#[cfg(target_os = "linux")]
const MASK_WORDS: usize = 1024 / 64;

#[cfg(target_os = "linux")]
extern "C" {
    fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut u64) -> i32;
    fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
}

/// CPUs the current process is allowed to run on, in ascending order.
/// Empty only if detection failed entirely.
#[cfg(target_os = "linux")]
pub fn allowed_cpus() -> Vec<usize> {
    let mut mask = [0u64; MASK_WORDS];
    let rc = unsafe { sched_getaffinity(0, std::mem::size_of_val(&mask), mask.as_mut_ptr()) };
    if rc != 0 {
        return fallback_cpus();
    }
    let mut cpus = Vec::new();
    for (w, &bits) in mask.iter().enumerate() {
        for b in 0..64 {
            if bits & (1u64 << b) != 0 {
                cpus.push(w * 64 + b);
            }
        }
    }
    if cpus.is_empty() {
        fallback_cpus()
    } else {
        cpus
    }
}

/// Non-Linux fallback: pretend CPUs `0..available_parallelism` are allowed.
#[cfg(not(target_os = "linux"))]
pub fn allowed_cpus() -> Vec<usize> {
    fallback_cpus()
}

fn fallback_cpus() -> Vec<usize> {
    let n = std::thread::available_parallelism().map_or(1, usize::from);
    (0..n).collect()
}

/// The parallelism actually available to this process: the size of its CPU
/// affinity mask where that can be read, else
/// [`std::thread::available_parallelism`].
pub fn effective_parallelism() -> usize {
    allowed_cpus().len().max(1)
}

/// Pin the calling thread to `cpu`. Returns `true` on success; failure is
/// harmless (the thread keeps its inherited mask).
#[cfg(target_os = "linux")]
pub fn pin_current_thread(cpu: usize) -> bool {
    if cpu >= MASK_WORDS * 64 {
        return false;
    }
    let mut mask = [0u64; MASK_WORDS];
    mask[cpu / 64] = 1u64 << (cpu % 64);
    // pid 0 = the calling thread.
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

/// Pinning is a no-op off Linux.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_cpu: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_reports_at_least_one_cpu() {
        let cpus = allowed_cpus();
        assert!(!cpus.is_empty());
        assert_eq!(effective_parallelism(), cpus.len());
        // Ascending and unique.
        assert!(cpus.windows(2).all(|w| w[0] < w[1]));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pin_to_an_allowed_cpu_succeeds_and_is_reversible() {
        let cpus = allowed_cpus();
        let first = cpus[0];
        assert!(pin_current_thread(first));
        assert_eq!(allowed_cpus(), vec![first]);
        // Restore the original mask so later tests on this thread see it.
        let mut mask = [0u64; MASK_WORDS];
        for c in &cpus {
            mask[c / 64] |= 1u64 << (c % 64);
        }
        let rc = unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
        assert_eq!(rc, 0);
    }
}
