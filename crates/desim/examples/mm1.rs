//! An M/M/1 queue on the bare simulation kernel — `desim` without any of
//! the HPC/VORX layers. Shows the two activity styles working together:
//! the arrival generator is an event chain, the server is a process.
//!
//! Run with: `cargo run -p desim --example mm1`

use desim::{sync::Mailbox, Ctx, SimDuration, Simulation};

struct World {
    queue: Mailbox<u64>, // arrival times, ns
    served: u64,
    total_wait_ns: u64,
    // xorshift state for exponential variates
    rng: u64,
}

fn exp_sample(rng: &mut u64, mean_ns: f64) -> u64 {
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    let u = (*rng >> 11) as f64 / (1u64 << 53) as f64;
    (-mean_ns * (1.0 - u).ln()) as u64
}

fn schedule_arrival(w: &mut World, s: &mut desim::Scheduler<World>, remaining: u32) {
    if remaining == 0 {
        return;
    }
    let gap = exp_sample(&mut w.rng, 120_000.0); // lambda = 1/120us
    s.schedule_in(SimDuration::from_ns(gap), move |w: &mut World, s| {
        let now = s.now().as_ns();
        w.queue.post(s, now);
        schedule_arrival(w, s, remaining - 1);
    });
}

fn main() {
    let mut sim = Simulation::new(World {
        queue: Mailbox::new(),
        served: 0,
        total_wait_ns: 0,
        rng: 0x9E3779B97F4A7C15,
    });
    const JOBS: u32 = 10_000;
    sim.setup(|w, s| schedule_arrival(w, s, JOBS));
    sim.spawn("server", |ctx: Ctx<World>| {
        for _ in 0..JOBS {
            let arrived = desim::sync::mailbox_recv(&ctx, |w: &mut World| &mut w.queue);
            let service = ctx.with(|w, _| exp_sample(&mut w.rng, 100_000.0)); // mu = 1/100us
            ctx.sleep(SimDuration::from_ns(service));
            ctx.with(move |w, s| {
                w.served += 1;
                w.total_wait_ns += s.now().as_ns() - arrived;
            });
        }
    });
    let report = sim.run_to_idle();
    assert!(report.all_finished());
    let w = sim.world();
    let mean_t_us = w.total_wait_ns as f64 / w.served as f64 / 1000.0;
    // M/M/1: T = 1/(mu - lambda) = 1/(10000 - 8333) per s = 600us.
    println!("served {} jobs in {}", w.served, report.now);
    println!("mean time in system: {mean_t_us:.0}us (M/M/1 theory: ~600us)");
}
