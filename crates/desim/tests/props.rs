//! Property tests for the simulation kernel's core guarantees.

use desim::{Ctx, SimDuration, SimTime, Simulation};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Events fire in nondecreasing time order, with FIFO order among ties,
    /// regardless of scheduling order.
    #[test]
    fn events_fire_in_time_then_fifo_order(delays in proptest::collection::vec(0u64..1_000, 1..80)) {
        let mut sim = Simulation::new(Vec::<(u64, usize)>::new());
        for (i, d) in delays.iter().enumerate() {
            let d = *d;
            sim.schedule_in(SimDuration::from_ns(d), move |w: &mut Vec<(u64, usize)>, s| {
                w.push((s.now().as_ns(), i));
            });
        }
        sim.run_to_idle();
        let log = sim.world().clone();
        prop_assert_eq!(log.len(), delays.len());
        for pair in log.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time went backwards: {pair:?}");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "FIFO violated at ties: {pair:?}");
            }
        }
    }

    /// Sleeps always advance exactly the requested duration, even stacked.
    #[test]
    fn sleeps_are_exact(naps in proptest::collection::vec(1u64..10_000, 1..30)) {
        let total: u64 = naps.iter().sum();
        let mut sim = Simulation::new(());
        sim.spawn("sleeper", move |ctx: Ctx<()>| {
            for d in naps {
                ctx.sleep(SimDuration::from_ns(d));
            }
        });
        let report = sim.run_to_idle();
        prop_assert!(report.all_finished());
        prop_assert_eq!(report.now, SimTime::from_ns(total));
    }

    /// run_until never overshoots and resuming completes identically to an
    /// uninterrupted run.
    #[test]
    fn run_until_is_resumable(delays in proptest::collection::vec(0u64..1_000, 1..40), cut in 0u64..1_000) {
        fn build(delays: &[u64]) -> Simulation<Vec<u64>> {
            let sim = Simulation::new(Vec::new());
            for d in delays {
                let d = *d;
                sim.schedule_in(SimDuration::from_ns(d), move |w: &mut Vec<u64>, s| {
                    w.push(s.now().as_ns());
                });
            }
            sim
        }
        let mut whole = build(&delays);
        whole.run_to_idle();
        let expect = whole.world().clone();

        let mut split = build(&delays);
        split.run_until(SimTime::from_ns(cut));
        prop_assert!(split.now() <= SimTime::from_ns(cut));
        split.run_to_idle();
        prop_assert_eq!(split.world().clone(), expect);
    }
}
