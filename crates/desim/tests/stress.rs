//! Stress tests for the engine hot paths: the same-instant event lane, the
//! park/unpark baton handoff, and stale/spurious wakeup handling.

use desim::{Ctx, ProcId, SimDuration, SimTime, Simulation, Trace, Wakeup};

const CHAIN: usize = 1024;

#[derive(Default)]
struct ChainWorld {
    /// ProcIds in chain order, filled in before the run starts.
    pids: Vec<ProcId>,
    /// Whose turn it is to fire.
    turn: usize,
    /// `(chain index)` events, recorded as each link fires.
    trace: Trace<u64>,
}

/// Build the 1024-process wake chain: every process waits for its turn, logs
/// itself, and wakes its successor with a zero-delay wake — the pattern the
/// same-instant lane exists for.
fn build_chain() -> Simulation<ChainWorld> {
    let sim = Simulation::new(ChainWorld::default());
    let pids: Vec<ProcId> = (0..CHAIN)
        .map(|i| {
            sim.spawn(format!("link{i}"), move |ctx: Ctx<ChainWorld>| {
                ctx.wait_until(move |w, _| (w.turn == i).then_some(()));
                ctx.with(move |w, s| {
                    let now = s.now();
                    w.trace.record(now, i as u64);
                    w.turn += 1;
                    if let Some(&next) = w.pids.get(i + 1) {
                        s.wake(next, Wakeup::START);
                    }
                });
            })
        })
        .collect();
    sim.setup(move |w, _| w.pids = pids);
    sim
}

fn run_chain() -> (SimTime, String) {
    let mut sim = build_chain();
    let report = sim.run_to_idle();
    assert!(
        report.all_finished(),
        "chain wedged, parked: {:?}",
        report.parked
    );
    let w = sim.world();
    assert_eq!(w.turn, CHAIN);
    // Every link fired, in order, all at t=0: the whole cascade runs on the
    // same-instant lane without time ever advancing.
    let fired: Vec<u64> = w
        .trace
        .iter()
        .map(|(t, &i)| {
            assert_eq!(t, SimTime::ZERO);
            i
        })
        .collect();
    assert_eq!(fired, (0..CHAIN as u64).collect::<Vec<_>>());
    (report.now, w.trace.to_json())
}

/// Determinism under the same-instant lane: two independent runs of the
/// 1024-process wake chain must produce bit-identical serialized traces.
#[test]
fn wake_chain_1024_is_deterministic() {
    let (now_a, json_a) = run_chain();
    let (now_b, json_b) = run_chain();
    assert_eq!(now_a, now_b);
    assert_eq!(json_a, json_b, "traces differ between identical runs");
}

/// Spurious wakeups must not break a condition loop: a waiter poked many
/// times before its condition holds simply re-parks each time.
#[test]
fn spurious_wakeups_are_harmless() {
    #[derive(Default)]
    struct W {
        waiter: Option<ProcId>,
        ready: bool,
        pokes: u32,
        done: bool,
    }
    let mut sim = Simulation::new(W::default());
    let pid = sim.spawn("waiter", |ctx: Ctx<W>| {
        ctx.wait_until(|w, _| w.ready.then_some(()));
        ctx.with(|w, _| w.done = true);
    });
    sim.setup(move |w, _| w.waiter = Some(pid));
    // Ten wakes with the condition still false, then one that satisfies it.
    for k in 0..10u64 {
        sim.schedule_in(SimDuration::from_ns(k + 1), move |w: &mut W, s| {
            w.pokes += 1;
            s.wake(w.waiter.unwrap(), Wakeup(k));
        });
    }
    sim.schedule_in(SimDuration::from_ns(100), |w: &mut W, s| {
        w.ready = true;
        s.wake(w.waiter.unwrap(), Wakeup::START);
    });
    assert!(sim.run_to_idle().all_finished());
    assert_eq!(sim.world().pokes, 10);
    assert!(sim.world().done);
}

/// A wake directed at an already-finished process is stale: the executor
/// must skip it silently rather than resume or panic.
#[test]
fn stale_wakeup_for_finished_process_is_skipped() {
    #[derive(Default)]
    struct W {
        short: Option<ProcId>,
    }
    let mut sim = Simulation::new(W::default());
    let pid = sim.spawn("short-lived", |ctx: Ctx<W>| {
        ctx.sleep(SimDuration::from_ns(5));
    });
    sim.setup(move |w, _| w.short = Some(pid));
    // Fires long after `short-lived` has finished.
    sim.schedule_in(SimDuration::from_ns(1_000), |w: &mut W, s| {
        s.wake(w.short.unwrap(), Wakeup::START);
    });
    let report = sim.run_to_idle();
    assert!(report.all_finished());
    assert_eq!(report.now, SimTime::from_ns(1_000));
}

/// A sleep interrupted by an unrelated wake must still last its full
/// duration (the timer loop re-parks on early wakeups).
#[test]
fn sleep_survives_unrelated_wakeups() {
    #[derive(Default)]
    struct W {
        sleeper: Option<ProcId>,
        woke_at: Option<SimTime>,
    }
    let mut sim = Simulation::new(W::default());
    let pid = sim.spawn("sleeper", |ctx: Ctx<W>| {
        ctx.sleep(SimDuration::from_ns(100));
        ctx.with(|w, s| w.woke_at = Some(s.now()));
    });
    sim.setup(move |w, _| w.sleeper = Some(pid));
    for k in [10u64, 40, 70] {
        sim.schedule_in(SimDuration::from_ns(k), |w: &mut W, s| {
            s.wake(w.sleeper.unwrap(), Wakeup(7));
        });
    }
    assert!(sim.run_to_idle().all_finished());
    assert_eq!(sim.world().woke_at, Some(SimTime::from_ns(100)));
}
