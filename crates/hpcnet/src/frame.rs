//! Frames: the unit of transfer on the HPC interconnect.
//!
//! The paper (§2): "Messages sent via the HPC are limited to some length
//! (1060 bytes in the current implementation)". We model that as a 36-byte
//! hardware envelope plus up to 1024 bytes of payload.

use bytes::Bytes;
use serde::Serialize;
use std::fmt;
use std::sync::Arc;

/// Accounting for real payload-byte copies made by the simulator's own data
/// structures (as opposed to *simulated* copies, which are charged as CPU
/// time but move no memory). `Payload` values are `Bytes`-backed: clones,
/// slices, fabric store-and-forward hops, and multicast replication all
/// share one refcounted allocation and never touch this meter. The only
/// legitimate copy points are payload *creation* ([`Payload::copy_from`])
/// and multi-fragment reassembly gather; tests pin the forwarding hot path
/// to zero by watching this counter.
pub mod copymeter {
    use std::sync::atomic::{AtomicU64, Ordering};

    static PAYLOAD_BYTES_COPIED: AtomicU64 = AtomicU64::new(0);

    /// Record `n` payload bytes physically copied.
    pub fn add(n: u64) {
        PAYLOAD_BYTES_COPIED.fetch_add(n, Ordering::Relaxed);
    }

    /// Total payload bytes physically copied since process start (or the
    /// last [`reset`]). Process-global: assert on *deltas* in tests that may
    /// share the process with others.
    pub fn payload_bytes_copied() -> u64 {
        PAYLOAD_BYTES_COPIED.load(Ordering::Relaxed)
    }

    /// Zero the counter (single-test binaries only).
    pub fn reset() {
        PAYLOAD_BYTES_COPIED.store(0, Ordering::Relaxed);
    }
}

/// The hardware envelope carried with every frame (routing, length, type).
pub const HEADER_BYTES: u32 = 36;
/// Maximum payload bytes per frame.
pub const MAX_PAYLOAD: u32 = 1024;
/// Maximum total frame length on the wire (`HEADER_BYTES + MAX_PAYLOAD`),
/// the paper's 1060-byte limit.
pub const MAX_FRAME: u32 = HEADER_BYTES + MAX_PAYLOAD;

/// Address of an endpoint (a processing node or a host workstation port).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeAddr(pub u32);

// Hand-written (derive unavailable offline, see vendor/README.md); matches
// what `#[derive(Serialize)]` would emit for a newtype struct.
impl Serialize for NodeAddr {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_newtype_struct("NodeAddr", &self.0)
    }
}

impl fmt::Debug for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Frame payload. Applications that verify data end-to-end carry real bytes;
/// experiments that only need timing use `Synthetic` so the simulator does
/// not copy memory.
#[derive(Clone, PartialEq, Eq)]
pub enum Payload {
    /// Real bytes, delivered intact to the receiver.
    Data(Bytes),
    /// A length-only stand-in: `Synthetic(n)` behaves like `n` bytes on the
    /// wire and in every software copy cost, but carries no data.
    Synthetic(u32),
}

impl Payload {
    /// Construct a data payload from a byte slice. This is a payload-byte
    /// copy (the one unavoidable copy, at creation); everything downstream —
    /// fragmentation, forwarding, fan-out, reassembly of single-fragment
    /// messages — shares the allocation made here.
    pub fn copy_from(data: &[u8]) -> Self {
        copymeter::add(data.len() as u64);
        Payload::Data(Bytes::copy_from_slice(data))
    }

    /// A zero-copy sub-payload sharing this payload's backing storage.
    /// Synthetic payloads yield a synthetic slice of the same length.
    ///
    /// # Panics
    /// Panics if the range exceeds the payload length.
    pub fn slice(&self, start: usize, end: usize) -> Payload {
        match self {
            Payload::Data(b) => Payload::Data(b.slice(start..end)),
            Payload::Synthetic(n) => {
                assert!(end <= *n as usize && start <= end, "slice out of bounds");
                Payload::Synthetic((end - start) as u32)
            }
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> u32 {
        match self {
            Payload::Data(b) => b.len() as u32,
            Payload::Synthetic(n) => *n,
        }
    }

    /// True iff zero-length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The carried bytes, if this is a data payload.
    pub fn bytes(&self) -> Option<&Bytes> {
        match self {
            Payload::Data(b) => Some(b),
            Payload::Synthetic(_) => None,
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Data(b) => write!(f, "Data[{}B]", b.len()),
            Payload::Synthetic(n) => write!(f, "Synth[{n}B]"),
        }
    }
}

/// Destination of a frame: one endpoint, or a hardware-multicast set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Dest {
    /// Deliver to a single endpoint.
    Unicast(NodeAddr),
    /// Hardware multicast: the fabric replicates the frame at branch
    /// clusters, so the source transmits it once (§4.2 of the paper).
    /// The target list is refcounted so every fragment of a multi-frame
    /// message (and every sender-side retransmission) shares one
    /// allocation; only a fabric branch split builds a new list.
    Multicast(Arc<[NodeAddr]>),
}

impl Dest {
    /// The destination endpoints.
    pub fn targets(&self) -> &[NodeAddr] {
        match self {
            Dest::Unicast(a) => std::slice::from_ref(a),
            Dest::Multicast(v) => v,
        }
    }

    /// Number of destination endpoints.
    pub fn fanout(&self) -> usize {
        self.targets().len()
    }
}

/// One HPC frame.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Originating endpoint.
    pub src: NodeAddr,
    /// Destination endpoint(s).
    pub dst: Dest,
    /// Upper-layer protocol discriminator (channel data, channel ack,
    /// object-manager request, UDCO tag, ...). Opaque to the hardware.
    pub kind: u16,
    /// Upper-layer sequence number / correlation tag. Opaque to the hardware.
    pub seq: u64,
    /// The payload.
    pub payload: Payload,
    /// Set by the fault plane when the frame was damaged in transit: the
    /// receiving interface's CRC check fails, so software can detect (and
    /// must discard) the frame, but cannot repair it.
    pub corrupted: bool,
}

impl Frame {
    /// Build a unicast frame.
    pub fn unicast(src: NodeAddr, dst: NodeAddr, kind: u16, seq: u64, payload: Payload) -> Self {
        Frame {
            src,
            dst: Dest::Unicast(dst),
            kind,
            seq,
            payload,
            corrupted: false,
        }
    }

    /// Total length on the wire (envelope + payload).
    pub fn wire_bytes(&self) -> u32 {
        HEADER_BYTES + self.payload.len()
    }

    /// Check the hardware length limit.
    pub fn validate(&self) -> Result<(), FrameError> {
        if self.payload.len() > MAX_PAYLOAD {
            return Err(FrameError::TooLong {
                payload: self.payload.len(),
                max: MAX_PAYLOAD,
            });
        }
        if self.dst.targets().is_empty() {
            return Err(FrameError::NoDestination);
        }
        Ok(())
    }
}

/// Frame construction/validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Payload exceeds the 1024-byte hardware limit.
    TooLong {
        /// Attempted payload length.
        payload: u32,
        /// The hardware maximum.
        max: u32,
    },
    /// Multicast with an empty destination set.
    NoDestination,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLong { payload, max } => {
                write!(
                    f,
                    "payload {payload} bytes exceeds HPC frame limit of {max}"
                )
            }
            FrameError::NoDestination => write!(f, "frame has no destination"),
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_length_includes_header() {
        let f = Frame::unicast(NodeAddr(0), NodeAddr(1), 0, 0, Payload::Synthetic(4));
        assert_eq!(f.wire_bytes(), 40);
        assert_eq!(
            Frame::unicast(NodeAddr(0), NodeAddr(1), 0, 0, Payload::Synthetic(1024)).wire_bytes(),
            MAX_FRAME
        );
    }

    #[test]
    fn validate_rejects_oversize() {
        let f = Frame::unicast(NodeAddr(0), NodeAddr(1), 0, 0, Payload::Synthetic(1025));
        assert_eq!(
            f.validate(),
            Err(FrameError::TooLong {
                payload: 1025,
                max: 1024
            })
        );
        let ok = Frame::unicast(NodeAddr(0), NodeAddr(1), 0, 0, Payload::Synthetic(1024));
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_empty_multicast() {
        let f = Frame {
            src: NodeAddr(0),
            dst: Dest::Multicast(Vec::new().into()),
            kind: 0,
            seq: 0,
            payload: Payload::Synthetic(1),
            corrupted: false,
        };
        assert_eq!(f.validate(), Err(FrameError::NoDestination));
    }

    #[test]
    fn payload_data_round_trip() {
        let p = Payload::copy_from(&[1, 2, 3]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.bytes().unwrap().as_ref(), &[1, 2, 3]);
        assert_eq!(Payload::Synthetic(7).bytes(), None);
        assert!(Payload::Synthetic(0).is_empty());
    }

    #[test]
    fn dest_targets() {
        let u = Dest::Unicast(NodeAddr(3));
        assert_eq!(u.targets(), &[NodeAddr(3)]);
        assert_eq!(u.fanout(), 1);
        let m = Dest::Multicast(vec![NodeAddr(1), NodeAddr(2)].into());
        assert_eq!(m.fanout(), 2);
    }
}
