//! Hardware timing/capacity parameters of the HPC interconnect.

/// Number of ports on one HPC cluster (§1 of the paper: "self-routing star
/// networks called clusters, each of which contains twelve ports").
pub const PORTS_PER_CLUSTER: usize = 12;

/// Timing and buffering parameters for the fabric model.
///
/// Durations are expressed in nanoseconds here (this crate is independent of
/// `desim`); the embedding layer converts them to `SimDuration`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Serialization time of one byte on a port, in ns. The paper's ports
    /// run at 160 Mbit/s = 20 MB/s, i.e. 50 ns/byte.
    pub ns_per_byte: u64,
    /// Fixed per-hop latency (switch decision + propagation), in ns. Fiber
    /// runs "over a kilometer" are possible; we default to a short in-room
    /// link. Hardware latency is "much smaller than the latency introduced
    /// by the communications software" (§1), so this stays ≤ a few µs.
    pub hop_latency_ns: u64,
    /// Whole-message buffer slots at each cluster input port. A link
    /// "refuses to accept a message unless the hardware has room to buffer
    /// an entire message" (§2) — this is the hardware flow control.
    pub cluster_port_slots: usize,
    /// Whole-message buffer slots in an endpoint's receive FIFO.
    pub endpoint_rx_slots: usize,
    /// Store-and-forward byte budget per cluster switch for *sheddable*
    /// (lowest-priority, data-class) frames. A sheddable frame whose wire
    /// bytes would push the cluster's buffered sheddable bytes past this
    /// budget is dropped at arrival instead of buffered (deterministic load
    /// shedding; counted in `Stats::frames_shed`). `u64::MAX` — the default,
    /// and the 1988 hardware — disables the budget entirely.
    pub switch_byte_budget: u64,
    /// Combining-ALU latency per merge at a star coupler, in ns: each
    /// contribution folded into a held partial extends the partial's
    /// readiness by this much. Only consulted once a collective group is
    /// registered ([`crate::Fabric::comb_register_group`]).
    pub comb_alu_ns: u64,
    /// Combining window, in ns: the longest a star coupler holds a partial
    /// combine waiting for more contributions before flushing it onward.
    /// Bounds the latency a straggler (or a lost contribution) can impose
    /// on the rest of its subtree — see DESIGN.md §16.
    pub comb_window_ns: u64,
}

impl NetConfig {
    /// The 1988 HPC hardware as described by the paper.
    pub fn paper_1988() -> Self {
        NetConfig {
            ns_per_byte: 50,     // 160 Mbit/s
            hop_latency_ns: 500, // self-routing switch decision, short fiber
            cluster_port_slots: 2,
            endpoint_rx_slots: 4,
            switch_byte_budget: u64::MAX, // unbounded: the paper's hardware
            comb_alu_ns: 100,             // a register-file ALU pass
            comb_window_ns: 20_000,       // bounds straggler hold time
        }
    }

    /// Serialization time for `bytes` on a port, in ns.
    pub fn serialize_ns(&self, bytes: u32) -> u64 {
        self.ns_per_byte * u64::from(bytes)
    }

    /// Latency of one store-and-forward hop for a frame of `wire_bytes`:
    /// full serialization onto the link plus the fixed switch/propagation
    /// latency. Every link a frame crosses pays at least this much, which is
    /// what gives the sharded engine its lookahead.
    pub fn link_latency_ns(&self, wire_bytes: u32) -> u64 {
        self.serialize_ns(wire_bytes) + self.hop_latency_ns
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::paper_1988()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rate_is_160_mbit() {
        let c = NetConfig::paper_1988();
        // 20 MB/s => 1024 bytes serialize in 51.2 us.
        assert_eq!(c.serialize_ns(1024), 51_200);
        assert_eq!(c.serialize_ns(0), 0);
    }
}
