//! The HPC fabric: an event-driven model of clusters, links, and endpoint
//! adapters with *hardware* flow control.
//!
//! "Flow-control in the HPC is implemented entirely in the interconnect
//! hardware. This makes loss of messages due to buffer overflow impossible.
//! [...] Each HPC link refuses to accept a message unless the hardware has
//! room to buffer an entire message, forcing the sender to wait until the
//! space is available. For outgoing processor links, the processor receives
//! an interrupt when room becomes available. This scheme guarantees that
//! messages are never lost by the interconnect and a fair hardware
//! scheduling mechanism ensures that every sender is eventually serviced."
//! (§2)
//!
//! **Deadlock freedom.** Store-and-forward with finite buffers is
//! deadlock-free only when routes cannot form a buffer-dependency cycle.
//! The provided topologies guarantee this: single clusters trivially,
//! incomplete hypercubes by two-phase dimension-ordered routing, and any
//! acyclic (tree) graph under BFS. Custom cyclic graphs routed by BFS can
//! wedge under saturation (see `tests/topology_traffic.rs`); that matches
//! real store-and-forward hardware, which is why the paper's machine is a
//! hypercube.
//!
//! The model is a Mealy machine: [`Fabric::try_send`], [`Fabric::handle`]
//! and [`Fabric::rx_pop`] mutate state and return an [`Output`] containing
//! notifications for the embedding software layer plus future [`NetEvent`]s
//! the embedder must schedule. The fabric itself holds no clock, so it can
//! be driven by `desim`, by the standalone driver in [`crate::driver`], or
//! directly by unit tests.

use std::collections::VecDeque;
use std::fmt;

use crate::config::{NetConfig, PORTS_PER_CLUSTER};
use crate::frame::{Dest, Frame, FrameError, NodeAddr};
use crate::topology::{Attachment, ClusterId, PortRef, Topology};

/// Identifies one directed link in the fabric.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub u32);

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// One side of a directed link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Element {
    Endpoint(NodeAddr),
    Port(PortRef),
}

struct Link {
    from: Element,
    to: Element,
    /// Transmitting right now.
    busy: bool,
    /// Frames fully arrived at the `to` side, awaiting forwarding/drain.
    buf: VecDeque<Frame>,
    /// Slots claimed by in-flight frames (reserved at transmission start —
    /// this reservation *is* the hardware flow control).
    reserved: usize,
    cap: usize,
    /// Total ns this link has spent transmitting (utilization statistics).
    busy_ns: u64,
}

impl Link {
    fn can_accept(&self) -> bool {
        self.buf.len() + self.reserved < self.cap
    }
}

struct EndpointState {
    /// endpoint -> cluster.
    up: LinkId,
    /// cluster -> endpoint.
    down: LinkId,
    /// The output register is serializing.
    tx_busy: bool,
    /// Frame written by software, waiting for downstream buffer space.
    out_reg: Option<Frame>,
}

/// Internal fabric event; opaque to embedders, who only need to schedule it
/// back into [`Fabric::handle`] after the indicated delay.
#[derive(Debug)]
pub enum NetEvent {
    /// A link finished serializing a frame.
    LinkFree(LinkId),
    /// A frame fully arrived at the receiving side of a link.
    Arrive(LinkId, Frame),
}

/// Notification to the embedding software layer.
#[derive(Debug)]
pub enum Notify {
    /// The endpoint's output register is free again ("the processor receives
    /// an interrupt when room becomes available").
    TxReady(NodeAddr),
    /// A frame arrived in the endpoint's receive FIFO; drain it with
    /// [`Fabric::rx_pop`].
    RxArrived(NodeAddr),
}

/// What a fabric operation produced: software notifications plus events to
/// schedule `delay_ns` in the future.
#[derive(Debug, Default)]
pub struct Output {
    /// Notifications for the software layer, in order.
    pub notifies: Vec<Notify>,
    /// `(delay_ns, event)` pairs the embedder must schedule.
    pub schedule: Vec<(u64, NetEvent)>,
}

/// Why [`Fabric::try_send`] rejected a frame.
#[derive(Debug, PartialEq, Eq)]
pub enum SendError {
    /// The output register still holds / is serializing a previous frame;
    /// wait for [`Notify::TxReady`].
    TxBusy,
    /// The frame violates hardware limits.
    Invalid(FrameError),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::TxBusy => write!(f, "endpoint output register busy"),
            SendError::Invalid(e) => write!(f, "invalid frame: {e}"),
        }
    }
}

impl std::error::Error for SendError {}

fn elem_name(e: Element) -> String {
    match e {
        Element::Endpoint(a) => a.to_string(),
        Element::Port(p) => format!("c{}p{}", p.cluster.0, p.port),
    }
}

/// Aggregate fabric statistics.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    /// Frames handed to endpoint software (multicast counted per copy).
    pub frames_delivered: u64,
    /// Payload bytes delivered.
    pub payload_bytes_delivered: u64,
    /// Frames injected by endpoints.
    pub frames_sent: u64,
    /// Per-endpoint delivered-frame counts.
    pub per_endpoint_rx: Vec<u64>,
    /// Per-endpoint injected-frame counts.
    pub per_endpoint_tx: Vec<u64>,
}

/// The HPC interconnect model. See module docs.
pub struct Fabric {
    cfg: NetConfig,
    topo: Topology,
    links: Vec<Link>,
    eps: Vec<EndpointState>,
    /// Per-cluster list of links terminating at that cluster, ordered by the
    /// receiving port index (deterministic arbitration order).
    cluster_inputs: Vec<Vec<LinkId>>,
    /// Per-cluster outgoing link for each port.
    port_out: Vec<[Option<LinkId>; PORTS_PER_CLUSTER]>,
    /// Round-robin pointer per output link into `cluster_inputs` (fairness).
    rr: Vec<usize>,
    /// Frames currently inside the fabric (in a register, buffer or flight).
    in_flight: usize,
    /// Statistics.
    pub stats: Stats,
    now_ns: u64,
}

impl Fabric {
    /// Build a fabric over `topo` with hardware parameters `cfg`.
    pub fn new(topo: Topology, cfg: NetConfig) -> Self {
        let mut links = Vec::new();
        let mut cluster_inputs = vec![Vec::new(); topo.n_clusters()];
        let mut port_out = vec![[None; PORTS_PER_CLUSTER]; topo.n_clusters()];
        let mut eps = Vec::with_capacity(topo.n_endpoints());

        let add_link = |links: &mut Vec<Link>, from: Element, to: Element, cap: usize| {
            let id = LinkId(links.len() as u32);
            links.push(Link {
                from,
                to,
                busy: false,
                buf: VecDeque::new(),
                reserved: 0,
                cap,
                busy_ns: 0,
            });
            id
        };

        // Endpoint links first (ids correlate with NodeAddr order).
        for addr in topo.endpoints() {
            let p = topo.endpoint_port(addr);
            let up = add_link(
                &mut links,
                Element::Endpoint(addr),
                Element::Port(p),
                cfg.cluster_port_slots,
            );
            let down = add_link(
                &mut links,
                Element::Port(p),
                Element::Endpoint(addr),
                cfg.endpoint_rx_slots,
            );
            cluster_inputs[p.cluster.0 as usize].push(up);
            port_out[p.cluster.0 as usize][usize::from(p.port)] = Some(down);
            eps.push(EndpointState {
                up,
                down,
                tx_busy: false,
                out_reg: None,
            });
        }

        // Cluster-to-cluster links (each wired pair appears once per
        // direction). Scan ports; create the pair when we see the lower id.
        for c in 0..topo.n_clusters() {
            for port in 0..PORTS_PER_CLUSTER {
                let here = PortRef {
                    cluster: ClusterId(c as u16),
                    port: port as u8,
                };
                if let Attachment::Cluster(peer) = topo.attachment(here) {
                    if (peer.cluster.0 as usize, usize::from(peer.port)) > (c, port) {
                        let out = add_link(
                            &mut links,
                            Element::Port(here),
                            Element::Port(peer),
                            cfg.cluster_port_slots,
                        );
                        let back = add_link(
                            &mut links,
                            Element::Port(peer),
                            Element::Port(here),
                            cfg.cluster_port_slots,
                        );
                        port_out[c][port] = Some(out);
                        port_out[peer.cluster.0 as usize][usize::from(peer.port)] = Some(back);
                        cluster_inputs[peer.cluster.0 as usize].push(out);
                        cluster_inputs[c].push(back);
                    }
                }
            }
        }
        // Deterministic arbitration order: by receiving port index.
        for (c, inputs) in cluster_inputs.iter_mut().enumerate() {
            inputs.sort_by_key(|l| match links[l.0 as usize].to {
                Element::Port(p) => {
                    debug_assert_eq!(p.cluster.0 as usize, c);
                    p.port
                }
                Element::Endpoint(_) => unreachable!("cluster input ends at a port"),
            });
        }

        let n_links = links.len();
        let n_eps = eps.len();
        Fabric {
            cfg,
            topo,
            links,
            eps,
            cluster_inputs,
            port_out,
            rr: vec![0; n_links],
            in_flight: 0,
            stats: Stats {
                per_endpoint_rx: vec![0; n_eps],
                per_endpoint_tx: vec![0; n_eps],
                ..Default::default()
            },
            now_ns: 0,
        }
    }

    /// The topology this fabric was built over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The hardware configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// True iff `src` can accept a new frame into its output register.
    pub fn can_send(&self, src: NodeAddr) -> bool {
        let e = &self.eps[src.0 as usize];
        !e.tx_busy && e.out_reg.is_none()
    }

    /// Software writes a frame to the endpoint's output register.
    ///
    /// On success the frame is inside the hardware and will be delivered;
    /// progress (serialization start, etc.) is reflected in the returned
    /// [`Output`]. `now_ns` is the current time (statistics only).
    pub fn try_send(&mut self, now_ns: u64, frame: Frame) -> Result<Output, SendError> {
        self.now_ns = now_ns;
        frame.validate().map_err(SendError::Invalid)?;
        if !self.can_send(frame.src) {
            return Err(SendError::TxBusy);
        }
        self.stats.frames_sent += 1;
        self.stats.per_endpoint_tx[frame.src.0 as usize] += 1;
        let src = frame.src;
        self.eps[src.0 as usize].out_reg = Some(frame);
        self.in_flight += 1;
        let mut out = Output::default();
        self.progress(&mut out);
        Ok(out)
    }

    /// Process a previously scheduled fabric event.
    pub fn handle(&mut self, now_ns: u64, ev: NetEvent) -> Output {
        self.now_ns = now_ns;
        let mut out = Output::default();
        match ev {
            NetEvent::LinkFree(l) => {
                let link = &mut self.links[l.0 as usize];
                debug_assert!(link.busy);
                link.busy = false;
                if let Element::Endpoint(a) = link.from {
                    self.eps[a.0 as usize].tx_busy = false;
                    self.progress(&mut out);
                    // Only signal readiness if progress did not immediately
                    // refill the transmitter (it cannot: software has not
                    // run), but keep the check for robustness.
                    if self.can_send(a) {
                        out.notifies.push(Notify::TxReady(a));
                    }
                } else {
                    self.progress(&mut out);
                }
            }
            NetEvent::Arrive(l, frame) => {
                let link = &mut self.links[l.0 as usize];
                debug_assert!(link.reserved > 0);
                link.reserved -= 1;
                let to = link.to;
                link.buf.push_back(frame);
                if let Element::Endpoint(a) = to {
                    out.notifies.push(Notify::RxArrived(a));
                }
                self.progress(&mut out);
            }
        }
        out
    }

    /// Number of frames waiting in an endpoint's receive FIFO.
    pub fn rx_depth(&self, node: NodeAddr) -> usize {
        self.links[self.eps[node.0 as usize].down.0 as usize]
            .buf
            .len()
    }

    /// Peek at the head of an endpoint's receive FIFO.
    pub fn rx_peek(&self, node: NodeAddr) -> Option<&Frame> {
        self.links[self.eps[node.0 as usize].down.0 as usize]
            .buf
            .front()
    }

    /// Software drains one frame from the endpoint's receive FIFO, freeing
    /// the hardware buffer slot (which may unblock upstream transmissions,
    /// reflected in the returned [`Output`]).
    pub fn rx_pop(&mut self, now_ns: u64, node: NodeAddr) -> (Option<Frame>, Output) {
        self.now_ns = now_ns;
        let down = self.eps[node.0 as usize].down;
        let frame = self.links[down.0 as usize].buf.pop_front();
        let mut out = Output::default();
        if let Some(f) = &frame {
            self.in_flight -= 1;
            self.stats.frames_delivered += 1;
            self.stats.payload_bytes_delivered += u64::from(f.payload.len());
            self.stats.per_endpoint_rx[node.0 as usize] += 1;
            self.progress(&mut out);
        }
        (frame, out)
    }

    /// Frames currently inside the fabric (registers, buffers, in flight).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Total transmitting time of the busiest link, in ns (diagnostics).
    pub fn max_link_busy_ns(&self) -> u64 {
        self.links.iter().map(|l| l.busy_ns).max().unwrap_or(0)
    }

    /// Per-link utilization snapshot: `(link, description, busy_ns,
    /// buffered frames)` for every directed link, in id order. The
    /// description names the two elements the link joins.
    pub fn link_report(&self) -> Vec<(LinkId, String, u64, usize)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let desc = format!("{} -> {}", elem_name(l.from), elem_name(l.to));
                (LinkId(i as u32), desc, l.busy_ns, l.buf.len())
            })
            .collect()
    }

    /// Number of directed links in the fabric.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// The destination port on `cluster` for each target of `dst`, grouped:
    /// returns the ports in ascending order with their target subsets.
    fn group_by_port(&self, cluster: ClusterId, dst: &Dest) -> Vec<(u8, Vec<NodeAddr>)> {
        let mut groups: Vec<(u8, Vec<NodeAddr>)> = Vec::new();
        for &t in dst.targets() {
            let port = self.topo.route(cluster, t);
            match groups.iter_mut().find(|(p, _)| *p == port) {
                Some((_, v)) => v.push(t),
                None => groups.push((port, vec![t])),
            }
        }
        groups.sort_by_key(|(p, _)| *p);
        groups
    }

    /// Start every transmission that can start, repeating until quiescent.
    fn progress(&mut self, out: &mut Output) {
        loop {
            let mut changed = false;

            // Endpoint injections.
            for i in 0..self.eps.len() {
                let up = self.eps[i].up;
                if !self.eps[i].tx_busy
                    && self.eps[i].out_reg.is_some()
                    && !self.links[up.0 as usize].busy
                    && self.links[up.0 as usize].can_accept()
                {
                    let frame = self.eps[i].out_reg.take().expect("checked");
                    self.eps[i].tx_busy = true;
                    self.start_tx(up, frame, out);
                    changed = true;
                }
            }

            // Cluster forwarding, one output port at a time, fair
            // round-robin over that cluster's inputs.
            for c in 0..self.cluster_inputs.len() {
                for port in 0..PORTS_PER_CLUSTER {
                    let Some(out_link) = self.port_out[c][port] else {
                        continue;
                    };
                    if self.links[out_link.0 as usize].busy
                        || !self.links[out_link.0 as usize].can_accept()
                    {
                        continue;
                    }
                    if self.forward_one(ClusterId(c as u16), port as u8, out_link, out) {
                        changed = true;
                    }
                }
            }

            if !changed {
                return;
            }
        }
    }

    /// Try to start one transmission on `out_link` (output `port` of
    /// `cluster`), taking the next input in round-robin order whose head
    /// frame routes (at least partially) through this port. Returns true if
    /// a transmission started.
    fn forward_one(
        &mut self,
        cluster: ClusterId,
        port: u8,
        out_link: LinkId,
        out: &mut Output,
    ) -> bool {
        let inputs = &self.cluster_inputs[cluster.0 as usize];
        let n = inputs.len();
        if n == 0 {
            return false;
        }
        let start = self.rr[out_link.0 as usize] % n;
        for k in 0..n {
            let input = inputs[(start + k) % n];
            let Some(head) = self.links[input.0 as usize].buf.front() else {
                continue;
            };
            let groups = self.group_by_port(cluster, &head.dst);
            let Some((_, targets)) = groups.into_iter().find(|(p, _)| *p == port) else {
                continue;
            };
            // Found a frame (or a multicast branch of one) for this port.
            self.rr[out_link.0 as usize] = (start + k + 1) % n;
            let head = self.links[input.0 as usize]
                .buf
                .front_mut()
                .expect("checked");
            let sub_dst = if targets.len() == 1 {
                Dest::Unicast(targets[0])
            } else {
                Dest::Multicast(targets.clone())
            };
            let mut copy = head.clone();
            copy.dst = sub_dst;
            // Remove the transmitted targets from the head frame; pop the
            // buffer slot when every branch has been forwarded.
            let remaining: Vec<NodeAddr> = head
                .dst
                .targets()
                .iter()
                .copied()
                .filter(|t| !targets.contains(t))
                .collect();
            if remaining.is_empty() {
                self.links[input.0 as usize].buf.pop_front();
            } else {
                head.dst = Dest::Multicast(remaining);
                // A replicated branch is a new frame inside the fabric.
                self.in_flight += 1;
            }
            self.start_tx(out_link, copy, out);
            return true;
        }
        false
    }

    fn start_tx(&mut self, l: LinkId, frame: Frame, out: &mut Output) {
        let ser = self.cfg.serialize_ns(frame.wire_bytes());
        let link = &mut self.links[l.0 as usize];
        debug_assert!(!link.busy && link.can_accept());
        link.busy = true;
        link.reserved += 1;
        link.busy_ns += ser;
        out.schedule.push((ser, NetEvent::LinkFree(l)));
        out.schedule
            .push((ser + self.cfg.hop_latency_ns, NetEvent::Arrive(l, frame)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::StandaloneNet;
    use crate::frame::Payload;

    fn two_node_net() -> StandaloneNet {
        StandaloneNet::new(Fabric::new(
            Topology::single_cluster(2).unwrap(),
            NetConfig::paper_1988(),
        ))
    }

    #[test]
    fn unicast_delivery_same_cluster() {
        let mut net = two_node_net();
        net.send_at(
            0,
            Frame::unicast(NodeAddr(0), NodeAddr(1), 7, 42, Payload::Synthetic(4)),
        );
        net.run();
        assert_eq!(net.delivered.len(), 1);
        let (t, to, f) = &net.delivered[0];
        assert_eq!(*to, NodeAddr(1));
        assert_eq!(f.kind, 7);
        assert_eq!(f.seq, 42);
        // Two hops (node->cluster, cluster->node), each 40 B * 50 ns + 500 ns.
        assert_eq!(*t, 2 * (40 * 50 + 500));
        assert_eq!(net.fabric.in_flight(), 0);
    }

    #[test]
    fn payload_data_survives_transit() {
        let mut net = two_node_net();
        net.send_at(
            0,
            Frame::unicast(
                NodeAddr(0),
                NodeAddr(1),
                0,
                0,
                Payload::copy_from(&[9, 8, 7, 6]),
            ),
        );
        net.run();
        assert_eq!(
            net.delivered[0].2.payload.bytes().unwrap().as_ref(),
            &[9, 8, 7, 6]
        );
    }

    #[test]
    fn multi_hop_crosses_clusters() {
        let topo = Topology::incomplete_hypercube(4, 2).unwrap();
        let hops = topo.hops(NodeAddr(0), NodeAddr(7));
        assert_eq!(hops, 2); // cluster 0 -> 1 -> 3 or 0 -> 2 -> 3
        let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
        net.send_at(
            0,
            Frame::unicast(NodeAddr(0), NodeAddr(7), 0, 0, Payload::Synthetic(100)),
        );
        net.run();
        assert_eq!(net.delivered.len(), 1);
        // Store-and-forward over 4 links (node->c0->c3' path->node): time is
        // 4 * (serialize + hop latency) for (100+36) bytes.
        let per_hop = 136 * 50 + 500;
        assert_eq!(net.delivered[0].0, 4 * per_hop);
    }

    #[test]
    fn back_to_back_frames_keep_fifo_order() {
        let mut net = two_node_net();
        // Queue three sends; the driver retries TxBusy when TxReady fires.
        for seq in 0..3 {
            net.send_at(
                0,
                Frame::unicast(NodeAddr(0), NodeAddr(1), 0, seq, Payload::Synthetic(512)),
            );
        }
        net.run();
        let seqs: Vec<u64> = net.delivered.iter().map(|(_, _, f)| f.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn oversize_frame_rejected() {
        let mut f = Fabric::new(
            Topology::single_cluster(2).unwrap(),
            NetConfig::paper_1988(),
        );
        let err = f
            .try_send(
                0,
                Frame::unicast(NodeAddr(0), NodeAddr(1), 0, 0, Payload::Synthetic(2000)),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            SendError::Invalid(FrameError::TooLong { .. })
        ));
    }

    #[test]
    fn tx_busy_until_ready() {
        let mut f = Fabric::new(
            Topology::single_cluster(2).unwrap(),
            NetConfig::paper_1988(),
        );
        let mk = |seq| Frame::unicast(NodeAddr(0), NodeAddr(1), 0, seq, Payload::Synthetic(4));
        assert!(f.can_send(NodeAddr(0)));
        f.try_send(0, mk(0)).unwrap();
        assert!(!f.can_send(NodeAddr(0)));
        assert_eq!(f.try_send(0, mk(1)).unwrap_err(), SendError::TxBusy);
    }

    #[test]
    fn multicast_replicates_in_fabric_not_at_source() {
        // 2 clusters, 3 endpoints each; node 0 multicasts to 3..6 on the
        // other cluster: the inter-cluster link must carry the frame ONCE.
        let topo = Topology::incomplete_hypercube(2, 3).unwrap();
        let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
        net.send_at(
            0,
            Frame {
                src: NodeAddr(0),
                dst: Dest::Multicast(vec![NodeAddr(3), NodeAddr(4), NodeAddr(5)]),
                kind: 0,
                seq: 0,
                payload: Payload::Synthetic(1024),
            },
        );
        net.run();
        assert_eq!(net.delivered.len(), 3);
        let mut who: Vec<u16> = net.delivered.iter().map(|(_, to, _)| to.0).collect();
        who.sort_unstable();
        assert_eq!(who, vec![3, 4, 5]);
        // Source sent exactly one frame.
        assert_eq!(net.fabric.stats.frames_sent, 1);
        assert_eq!(net.fabric.stats.frames_delivered, 3);
        assert_eq!(net.fabric.in_flight(), 0);
    }

    #[test]
    fn multicast_to_local_and_remote_targets() {
        let topo = Topology::incomplete_hypercube(2, 3).unwrap();
        let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
        net.send_at(
            0,
            Frame {
                src: NodeAddr(0),
                dst: Dest::Multicast(vec![NodeAddr(1), NodeAddr(2), NodeAddr(4)]),
                kind: 0,
                seq: 9,
                payload: Payload::Synthetic(64),
            },
        );
        net.run();
        let mut who: Vec<u16> = net.delivered.iter().map(|(_, to, _)| to.0).collect();
        who.sort_unstable();
        assert_eq!(who, vec![1, 2, 4]);
    }

    #[test]
    fn many_to_one_never_loses_frames() {
        // The §2 scenario that broke the S/NET: many senders target one
        // receiver simultaneously. The HPC must deliver everything.
        let topo = Topology::single_cluster(12).unwrap();
        let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
        for src in 1..12u16 {
            for seq in 0..5 {
                net.send_at(
                    0,
                    Frame::unicast(NodeAddr(src), NodeAddr(0), 0, seq, Payload::Synthetic(1024)),
                );
            }
        }
        net.run();
        assert_eq!(net.delivered.len(), 55);
        assert_eq!(net.fabric.in_flight(), 0);
        // Fairness: every sender's frame 0 arrives before any sender's
        // frame 4 (round-robin arbitration cannot starve anyone).
        let pos_of = |src: u16, seq: u64| {
            net.delivered
                .iter()
                .position(|(_, _, f)| f.src == NodeAddr(src) && f.seq == seq)
                .unwrap()
        };
        for src in 1..12u16 {
            for other in 1..12u16 {
                assert!(
                    pos_of(src, 0) < pos_of(other, 4),
                    "sender {src} frame 0 starved behind {other} frame 4"
                );
            }
        }
    }

    #[test]
    fn per_pair_fifo_under_contention() {
        let topo = Topology::incomplete_hypercube(4, 3).unwrap();
        let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
        let n = net.fabric.topology().n_endpoints() as u16;
        for src in 0..n {
            for seq in 0..4 {
                let dst = (src + 1) % n;
                net.send_at(
                    0,
                    Frame::unicast(
                        NodeAddr(src),
                        NodeAddr(dst),
                        0,
                        seq,
                        Payload::Synthetic(256),
                    ),
                );
            }
        }
        net.run();
        assert_eq!(net.delivered.len(), usize::from(n) * 4);
        // FIFO per (src, dst) pair.
        for src in 0..n {
            let seqs: Vec<u64> = net
                .delivered
                .iter()
                .filter(|(_, _, f)| f.src == NodeAddr(src))
                .map(|(_, _, f)| f.seq)
                .collect();
            assert_eq!(seqs, vec![0, 1, 2, 3], "src {src} reordered");
        }
    }

    #[test]
    fn stats_account_bytes() {
        let mut net = two_node_net();
        net.send_at(
            0,
            Frame::unicast(NodeAddr(0), NodeAddr(1), 0, 0, Payload::Synthetic(100)),
        );
        net.run();
        assert_eq!(net.fabric.stats.payload_bytes_delivered, 100);
        assert_eq!(net.fabric.stats.per_endpoint_tx[0], 1);
        assert_eq!(net.fabric.stats.per_endpoint_rx[1], 1);
        assert!(net.fabric.max_link_busy_ns() > 0);
    }
}

#[cfg(test)]
mod report_tests {
    use super::*;
    use crate::driver::StandaloneNet;
    use crate::frame::Payload;

    #[test]
    fn link_report_names_and_accounts() {
        let topo = Topology::incomplete_hypercube(2, 2).unwrap();
        let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
        net.send_at(
            0,
            Frame::unicast(NodeAddr(0), NodeAddr(3), 0, 0, Payload::Synthetic(100)),
        );
        net.run();
        let report = net.fabric.link_report();
        // 4 endpoints x 2 links + 2 inter-cluster links.
        assert_eq!(report.len(), net.fabric.n_links());
        assert_eq!(report.len(), 10);
        // The frame crossed clusters: some inter-cluster link was busy.
        let cross_busy = report
            .iter()
            .any(|(_, d, busy, _)| d.contains("c0p0") && d.contains("c1p0") && *busy > 0);
        assert!(cross_busy, "{report:?}");
        // Quiescent: nothing buffered anywhere.
        assert!(report.iter().all(|(_, _, _, buffered)| *buffered == 0));
    }
}
