//! The HPC fabric: an event-driven model of clusters, links, and endpoint
//! adapters with *hardware* flow control.
//!
//! "Flow-control in the HPC is implemented entirely in the interconnect
//! hardware. This makes loss of messages due to buffer overflow impossible.
//! [...] Each HPC link refuses to accept a message unless the hardware has
//! room to buffer an entire message, forcing the sender to wait until the
//! space is available. For outgoing processor links, the processor receives
//! an interrupt when room becomes available. This scheme guarantees that
//! messages are never lost by the interconnect and a fair hardware
//! scheduling mechanism ensures that every sender is eventually serviced."
//! (§2)
//!
//! **Deadlock freedom.** Store-and-forward with finite buffers is
//! deadlock-free only when routes cannot form a buffer-dependency cycle.
//! The provided topologies guarantee this: single clusters trivially,
//! incomplete hypercubes by two-phase dimension-ordered routing, and any
//! acyclic (tree) graph under BFS. Custom cyclic graphs routed by BFS can
//! wedge under saturation (see `tests/topology_traffic.rs`); that matches
//! real store-and-forward hardware, which is why the paper's machine is a
//! hypercube.
//!
//! The model is a Mealy machine: [`Fabric::try_send`], [`Fabric::handle`]
//! and [`Fabric::rx_pop`] mutate state and return an [`Output`] containing
//! notifications for the embedding software layer plus future [`NetEvent`]s
//! the embedder must schedule. The fabric itself holds no clock, so it can
//! be driven by `desim`, by the standalone driver in [`crate::driver`], or
//! directly by unit tests.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::config::{NetConfig, PORTS_PER_CLUSTER};
use crate::frame::{Dest, Frame, FrameError, NodeAddr};
use crate::topology::{Attachment, ClusterId, PortRef, Topology};

/// Identifies one directed link in the fabric.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub u32);

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// One side of a directed link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Element {
    Endpoint(NodeAddr),
    Port(PortRef),
}

struct Link {
    from: Element,
    to: Element,
    /// Transmitting right now.
    busy: bool,
    /// Frames fully arrived at the `to` side, awaiting forwarding/drain.
    buf: VecDeque<Frame>,
    /// Slots claimed by in-flight frames (reserved at transmission start —
    /// this reservation *is* the hardware flow control).
    reserved: usize,
    cap: usize,
    /// Total ns this link has spent transmitting (utilization statistics).
    busy_ns: u64,
}

impl Link {
    fn can_accept(&self) -> bool {
        self.buf.len() + self.reserved < self.cap
    }
}

struct EndpointState {
    /// endpoint -> cluster.
    up: LinkId,
    /// cluster -> endpoint.
    down: LinkId,
    /// The output register is serializing.
    tx_busy: bool,
    /// Frame written by software, waiting for downstream buffer space.
    out_reg: Option<Frame>,
}

/// Internal fabric event; opaque to embedders, who only need to schedule it
/// back into [`Fabric::handle`] after the indicated delay.
#[derive(Debug)]
pub enum NetEvent {
    /// A link finished serializing a frame.
    LinkFree(LinkId),
    /// A frame fully arrived at the receiving side of a link.
    Arrive(LinkId, Frame),
    /// A fault-delayed frame completing its extra transit time. Identical to
    /// [`NetEvent::Arrive`] except that the fault hook is not consulted
    /// again (each frame gets at most one disposition per hop).
    ArriveDelayed(LinkId, Frame),
    /// A combining window (or ALU) deadline at a star coupler: flush the
    /// partial combine keyed by `(cluster, seq)` onward. No-op if the entry
    /// already flushed early (expected-count satisfied).
    CombFlush(ClusterId, u64),
}

/// What the fault plane decided for one frame in transit on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transit {
    /// Deliver normally (the only outcome on fault-free hardware).
    Deliver,
    /// The frame is lost; the buffer reservation is released, honoring
    /// store-and-forward flow control (a lost frame frees its slot).
    Drop,
    /// Deliver with [`Frame::corrupted`] set (detectable CRC failure).
    Corrupt,
    /// Deliver after this many extra nanoseconds.
    Delay(u64),
}

/// Fault-injection hook consulted once per frame arrival on a link.
/// Implementations must be deterministic given the arrival order.
pub trait FaultHook {
    /// Decide the fate of `frame` completing transit on `link` at sim time
    /// `now_ns`. `hop_ns` is the fabric's base hop latency, so hooks can
    /// derive gray (pure-delay) degradation and delivered-latency stats
    /// without reaching back into the fabric config.
    fn on_transit(&mut self, link: LinkId, frame: &Frame, now_ns: u64, hop_ns: u64) -> Transit;

    /// A frame that was in flight on `link` when the link went down has been
    /// dropped (scripted loss — no disposition was drawn for it).
    fn on_down_drop(&mut self, _link: LinkId) {}

    /// A sheddable frame completing transit on `link` was dropped because the
    /// receiving cluster's store-and-forward byte budget was exhausted
    /// (deterministic overload shedding — no disposition was drawn for it).
    fn on_overload_drop(&mut self, _link: LinkId) {}
}

/// The no-op hook: every frame is delivered (the paper's fault-free HPC).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    fn on_transit(&mut self, _link: LinkId, _frame: &Frame, _now_ns: u64, _hop_ns: u64) -> Transit {
        Transit::Deliver
    }
}

/// Notification to the embedding software layer.
#[derive(Debug)]
pub enum Notify {
    /// The endpoint's output register is free again ("the processor receives
    /// an interrupt when room becomes available").
    TxReady(NodeAddr),
    /// A frame arrived in the endpoint's receive FIFO; drain it with
    /// [`Fabric::rx_pop`].
    RxArrived(NodeAddr),
}

/// What a fabric operation produced: software notifications plus events to
/// schedule `delay_ns` in the future.
#[derive(Debug, Default)]
pub struct Output {
    /// Notifications for the software layer, in order.
    pub notifies: Vec<Notify>,
    /// `(delay_ns, event)` pairs the embedder must schedule.
    pub schedule: Vec<(u64, NetEvent)>,
}

/// Why [`Fabric::try_send`] rejected a frame.
#[derive(Debug, PartialEq, Eq)]
pub enum SendError {
    /// The output register still holds / is serializing a previous frame;
    /// wait for [`Notify::TxReady`].
    TxBusy,
    /// The frame violates hardware limits.
    Invalid(FrameError),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::TxBusy => write!(f, "endpoint output register busy"),
            SendError::Invalid(e) => write!(f, "invalid frame: {e}"),
        }
    }
}

impl std::error::Error for SendError {}

fn elem_name(e: Element) -> String {
    match e {
        Element::Endpoint(a) => a.to_string(),
        Element::Port(p) => format!("c{}p{}", p.cluster.0, p.port),
    }
}

/// Aggregate fabric statistics.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    /// Frames handed to endpoint software (multicast counted per copy).
    pub frames_delivered: u64,
    /// Payload bytes delivered.
    pub payload_bytes_delivered: u64,
    /// Frames injected by endpoints.
    pub frames_sent: u64,
    /// Frames lost to injected faults or dead endpoints (never nonzero on
    /// the paper's fault-free hardware model).
    pub frames_dropped: u64,
    /// Frames delivered with a detectable corruption.
    pub frames_corrupted: u64,
    /// Frames forwarded through a different port than the fault-free
    /// routing tables would have chosen (adaptive reroute around a dead
    /// link). Always zero while the baseline tables are in force.
    pub frames_rerouted: u64,
    /// Sheddable frames dropped at a cluster switch because buffering them
    /// would exceed the cluster's store-and-forward byte budget. Disjoint
    /// from [`Stats::frames_dropped`]: a shed is a deliberate degradation
    /// decision, not a fault. Always zero while budgets are unbounded.
    pub frames_shed: u64,
    /// Per-endpoint delivered-frame counts.
    pub per_endpoint_rx: Vec<u64>,
    /// Per-endpoint injected-frame counts.
    pub per_endpoint_tx: Vec<u64>,
    /// Contributions merged into a held partial by a combining switch (each
    /// merge removed one frame from the network). Always zero until a
    /// collective group is registered.
    pub frames_combined: u64,
    /// Partial combines flushed onward by the combining switches.
    pub comb_flushes: u64,
}

/// The HPC interconnect model. See module docs.
pub struct Fabric {
    cfg: NetConfig,
    topo: Topology,
    links: Vec<Link>,
    eps: Vec<EndpointState>,
    /// Per-cluster list of links terminating at that cluster, ordered by the
    /// receiving port index (deterministic arbitration order).
    cluster_inputs: Vec<Vec<LinkId>>,
    /// Per-cluster outgoing link for each port.
    port_out: Vec<[Option<LinkId>; PORTS_PER_CLUSTER]>,
    /// Round-robin pointer per output link into `cluster_inputs` (fairness).
    rr: Vec<usize>,
    /// Per-endpoint fault state: a down endpoint's interface is electrically
    /// dead — it cannot inject, and frames arriving at it are lost.
    down: Vec<bool>,
    /// Per-link fault state: a down link carries nothing — frames in flight
    /// on it when it went down are lost, and no new transmission starts on
    /// it until it comes back up.
    link_down: Vec<bool>,
    /// How many links are currently down (fast fault-free guard).
    links_down: usize,
    /// Frames currently inside the fabric (in a register, buffer or flight).
    in_flight: usize,
    /// Per-cluster store-and-forward byte budget for sheddable frames
    /// (seeded from [`NetConfig::switch_byte_budget`], squeezable at run
    /// time via [`Fabric::set_cluster_byte_budget`]).
    byte_budget: Vec<u64>,
    /// Per-cluster bytes of sheddable frames currently buffered at the
    /// cluster's input ports (admission control keeps this ≤ the budget).
    data_buf_bytes: Vec<u64>,
    /// High-water mark of `data_buf_bytes`, per cluster.
    data_bytes_hwm: Vec<u64>,
    /// Per-link occupancy high-water mark (`buf.len() + reserved`), counter
    /// only — the cap itself is enforced by [`Link::can_accept`]. Endpoint
    /// receive links can exceed their cap via [`Fabric::inject_arrival`]
    /// (documented bridge simplification).
    link_depth_hwm: Vec<usize>,
    /// Fast guard: true iff any cluster budget is finite. Keeps byte
    /// accounting and shed checks entirely off the unbounded hot path.
    budgets_active: bool,
    /// Classifies frames eligible for overload shedding (lowest-priority
    /// traffic). Defaults to "nothing" — control/ack frames must never be
    /// shed, so the embedding software opts data kinds in explicitly.
    sheddable: fn(&Frame) -> bool,
    /// Endpoints whose output register holds a frame awaiting injection,
    /// sorted ascending. `progress` scans only these instead of every
    /// endpoint — O(active) per event, which is what lets million-endpoint
    /// worlds run (DESIGN.md §14). Sorted-`Vec` rather than a set so the
    /// scan order matches the old full 0..n sweep exactly and capacity is
    /// retained (no steady-state allocation).
    pending_eps: Vec<u32>,
    /// Frames buffered at each cluster's input ports (cluster-side links
    /// only; endpoint receive FIFOs are not counted).
    cluster_buffered: Vec<u32>,
    /// Clusters with `cluster_buffered > 0`, sorted ascending — the only
    /// clusters the forwarding scan visits.
    active_clusters: Vec<u32>,
    /// Reusable scan snapshot (progress mutates the candidate sets while
    /// iterating them).
    scan_scratch: Vec<u32>,
    /// Reusable target buffer for `forward_one`: the subset of a head
    /// frame's targets leaving through the port under consideration.
    /// Hoisted so steady-state forwarding performs zero allocations.
    fwd_scratch: Vec<NodeAddr>,
    /// Reusable cluster-path buffer for [`Fabric::probe_route_ns`].
    path_scratch: Vec<ClusterId>,
    /// In-switch combining state. `None` — and never consulted beyond one
    /// pointer test on the arrival paths — until the software layer
    /// registers a collective group, so non-collective runs are untouched.
    comb: Option<Box<Comb>>,
    /// Statistics.
    pub stats: Stats,
    now_ns: u64,
}

/// In-switch combining: registered groups plus the live combining table.
/// See `combine` module docs and DESIGN.md §16.
struct Comb {
    /// Registered groups by id.
    groups: HashMap<u32, CombGroup>,
    /// Live partial combines keyed by `(cluster, frame.seq)`.
    entries: HashMap<(u32, u64), CombEntry>,
}

/// One registered collective group, as the switches see it.
struct CombGroup {
    /// The frame kind that combines for this group.
    kind: u16,
    /// Per-cluster expected contribution count: how many of the group's
    /// members route through each cluster on their way to the root *through
    /// this fabric*. Purely an optimization — a partial that reaches its
    /// expected count flushes early instead of waiting out the window.
    /// Correctness never depends on it: the root software accumulates
    /// partials until the group total arrives.
    expected: Vec<u32>,
}

/// One held partial combine at one star coupler.
struct CombEntry {
    op: crate::combine::CombOp,
    /// The merged operand so far.
    value: u64,
    /// Original contributions folded into `value`.
    count: u32,
    /// When the combining ALU finishes the merges so far: each merge
    /// extends this by `NetConfig::comb_alu_ns`, and the entry never
    /// flushes earlier.
    ready_at: u64,
    /// Source of the first contribution (deterministic in arrival order) —
    /// stamped on the flushed frame.
    src: NodeAddr,
    /// The common unicast destination (the group root's endpoint).
    dst: NodeAddr,
    /// The common frame kind.
    kind: u16,
    /// Input link of the first fabric-side contribution: the flushed frame
    /// re-enters forwarding here. `None` when every contribution arrived
    /// through the cross-shard bridge (then the entry sits at the
    /// destination's own cluster and flushes straight into its FIFO).
    arrival: Option<LinkId>,
}

/// Byte cost a frame charges against a cluster's store-and-forward budget:
/// header + payload. Deliberately independent of the (mutable) multicast
/// target list, so a buffered frame's cost never changes between admission
/// and release.
fn frame_cost(f: &Frame) -> u64 {
    u64::from(crate::frame::HEADER_BYTES) + u64::from(f.payload.len())
}

impl Fabric {
    /// Build a fabric over `topo` with hardware parameters `cfg`.
    pub fn new(topo: Topology, cfg: NetConfig) -> Self {
        let mut links = Vec::new();
        let mut cluster_inputs = vec![Vec::new(); topo.n_clusters()];
        let mut port_out = vec![[None; PORTS_PER_CLUSTER]; topo.n_clusters()];
        let mut eps = Vec::with_capacity(topo.n_endpoints());

        let add_link = |links: &mut Vec<Link>, from: Element, to: Element, cap: usize| {
            let id = LinkId(links.len() as u32);
            links.push(Link {
                from,
                to,
                busy: false,
                buf: VecDeque::new(),
                reserved: 0,
                cap,
                busy_ns: 0,
            });
            id
        };

        // Endpoint links first (ids correlate with NodeAddr order).
        for addr in topo.endpoints() {
            let p = topo.endpoint_port(addr);
            let up = add_link(
                &mut links,
                Element::Endpoint(addr),
                Element::Port(p),
                cfg.cluster_port_slots,
            );
            let down = add_link(
                &mut links,
                Element::Port(p),
                Element::Endpoint(addr),
                cfg.endpoint_rx_slots,
            );
            cluster_inputs[p.cluster.0 as usize].push(up);
            port_out[p.cluster.0 as usize][usize::from(p.port)] = Some(down);
            eps.push(EndpointState {
                up,
                down,
                tx_busy: false,
                out_reg: None,
            });
        }

        // Cluster-to-cluster links (each wired pair appears once per
        // direction). Scan ports; create the pair when we see the lower id.
        for c in 0..topo.n_clusters() {
            for port in 0..PORTS_PER_CLUSTER {
                let here = PortRef {
                    cluster: ClusterId(c as u32),
                    port: port as u8,
                };
                if let Attachment::Cluster(peer) = topo.attachment(here) {
                    if (peer.cluster.0 as usize, usize::from(peer.port)) > (c, port) {
                        let out = add_link(
                            &mut links,
                            Element::Port(here),
                            Element::Port(peer),
                            cfg.cluster_port_slots,
                        );
                        let back = add_link(
                            &mut links,
                            Element::Port(peer),
                            Element::Port(here),
                            cfg.cluster_port_slots,
                        );
                        port_out[c][port] = Some(out);
                        port_out[peer.cluster.0 as usize][usize::from(peer.port)] = Some(back);
                        cluster_inputs[peer.cluster.0 as usize].push(out);
                        cluster_inputs[c].push(back);
                    }
                }
            }
        }
        // Deterministic arbitration order: by receiving port index.
        for (c, inputs) in cluster_inputs.iter_mut().enumerate() {
            inputs.sort_by_key(|l| match links[l.0 as usize].to {
                Element::Port(p) => {
                    debug_assert_eq!(p.cluster.0 as usize, c);
                    p.port
                }
                Element::Endpoint(_) => unreachable!("cluster input ends at a port"),
            });
        }

        let n_links = links.len();
        let n_eps = eps.len();
        let n_clusters = topo.n_clusters();
        Fabric {
            cfg,
            topo,
            links,
            eps,
            cluster_inputs,
            port_out,
            rr: vec![0; n_links],
            down: vec![false; n_eps],
            link_down: vec![false; n_links],
            links_down: 0,
            in_flight: 0,
            byte_budget: vec![cfg.switch_byte_budget; n_clusters],
            data_buf_bytes: vec![0; n_clusters],
            data_bytes_hwm: vec![0; n_clusters],
            link_depth_hwm: vec![0; n_links],
            budgets_active: cfg.switch_byte_budget != u64::MAX,
            sheddable: |_| false,
            pending_eps: Vec::new(),
            cluster_buffered: vec![0; n_clusters],
            active_clusters: Vec::new(),
            scan_scratch: Vec::new(),
            fwd_scratch: Vec::new(),
            path_scratch: Vec::new(),
            comb: None,
            stats: Stats {
                per_endpoint_rx: vec![0; n_eps],
                per_endpoint_tx: vec![0; n_eps],
                ..Default::default()
            },
            now_ns: 0,
        }
    }

    /// The topology this fabric was built over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The hardware configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// True iff `src` can accept a new frame into its output register.
    /// A down endpoint's interface is dead and never accepts.
    pub fn can_send(&self, src: NodeAddr) -> bool {
        let e = &self.eps[src.0 as usize];
        !self.down[src.0 as usize] && !e.tx_busy && e.out_reg.is_none()
    }

    /// True iff `node`'s interface is currently marked down.
    pub fn is_down(&self, node: NodeAddr) -> bool {
        self.down[node.0 as usize]
    }

    /// Mark `node`'s interface down (crash) or back up (restart).
    ///
    /// Going down models pulling the board: the unsent output register and
    /// everything buffered in the receive FIFO are lost (counted in
    /// [`Stats::frames_dropped`]); frames still in flight toward the node
    /// are dropped on arrival. Frames the node put on the wire before the
    /// crash are already the fabric's responsibility and still deliver.
    /// Coming back up restores a cold, empty interface.
    pub fn set_endpoint_down(&mut self, now_ns: u64, node: NodeAddr, down: bool) -> Output {
        self.now_ns = now_ns;
        let mut out = Output::default();
        let i = node.0 as usize;
        if self.down[i] == down {
            return out;
        }
        self.down[i] = down;
        if down {
            if self.eps[i].out_reg.take().is_some() {
                sorted_remove(&mut self.pending_eps, node.0);
                self.in_flight -= 1;
                self.stats.frames_dropped += 1;
            }
            let down_link = self.eps[i].down;
            let purged = {
                let buf = &mut self.links[down_link.0 as usize].buf;
                let n = buf.len();
                buf.clear();
                n
            };
            self.in_flight -= purged;
            self.stats.frames_dropped += purged as u64;
            if purged > 0 {
                // Freed FIFO slots may unblock upstream forwarding (the
                // frames it admits will be dropped on arrival).
                self.progress(&mut out);
            }
        } else {
            self.progress(&mut out);
            if self.can_send(node) {
                out.notifies.push(Notify::TxReady(node));
            }
        }
        out
    }

    /// True iff directed link `l` is currently down.
    pub fn is_link_down(&self, l: LinkId) -> bool {
        self.link_down[l.0 as usize]
    }

    /// Take one directed link down (cable cut) or bring it back up.
    ///
    /// Going down: frames in flight on the link are lost when their arrival
    /// fires (see [`FaultHook::on_down_drop`]); frames already buffered at
    /// the receiving side made it across and still forward. For an
    /// inter-cluster link the routing tables are recomputed over the
    /// surviving edges, so buffered and future traffic reroutes; traffic
    /// with no surviving route is dropped instead of wedging the
    /// store-and-forward buffers. Coming back up recomputes again (a fully
    /// healed fabric restores the fault-free tables verbatim). A physical
    /// cable cut is two directed links — take both ids down to model it.
    pub fn set_link_down(&mut self, now_ns: u64, l: LinkId, down: bool) -> Output {
        self.now_ns = now_ns;
        let mut out = Output::default();
        let i = l.0 as usize;
        if self.link_down[i] == down {
            return out;
        }
        self.link_down[i] = down;
        self.links_down = if down {
            self.links_down + 1
        } else {
            self.links_down - 1
        };
        if let (Element::Port(p), Element::Port(_)) = (self.links[i].from, self.links[i].to) {
            self.topo.set_edge_state(p, !down);
            self.topo.recompute();
        }
        // Either direction of change can unblock forwarding: a reroute opens
        // new paths, a heal reopens the link itself.
        self.progress(&mut out);
        out
    }

    /// The directed inter-cluster link out of cluster `from` toward cluster
    /// `to`, if those clusters are wired directly. Lets tests and benches
    /// name a hypercube edge without reverse-engineering link-id order.
    pub fn cluster_link(&self, from: ClusterId, to: ClusterId) -> Option<LinkId> {
        self.links
            .iter()
            .position(|l| {
                matches!((l.from, l.to), (Element::Port(a), Element::Port(b))
                if a.cluster == from && b.cluster == to)
            })
            .map(|i| LinkId(i as u32))
    }

    /// Software writes a frame to the endpoint's output register.
    ///
    /// On success the frame is inside the hardware and will be delivered;
    /// progress (serialization start, etc.) is reflected in the returned
    /// [`Output`]. `now_ns` is the current time (statistics only).
    pub fn try_send(&mut self, now_ns: u64, frame: Frame) -> Result<Output, SendError> {
        self.now_ns = now_ns;
        frame.validate().map_err(SendError::Invalid)?;
        if !self.can_send(frame.src) {
            return Err(SendError::TxBusy);
        }
        self.stats.frames_sent += 1;
        self.stats.per_endpoint_tx[frame.src.0 as usize] += 1;
        let src = frame.src;
        self.eps[src.0 as usize].out_reg = Some(frame);
        sorted_insert(&mut self.pending_eps, src.0);
        self.in_flight += 1;
        let mut out = Output::default();
        self.progress(&mut out);
        Ok(out)
    }

    /// Process a previously scheduled fabric event on fault-free hardware.
    pub fn handle(&mut self, now_ns: u64, ev: NetEvent) -> Output {
        self.handle_with(now_ns, ev, &mut NoFaults)
    }

    /// Process a previously scheduled fabric event, consulting `hook` for
    /// the disposition of every frame completing a hop.
    pub fn handle_with(&mut self, now_ns: u64, ev: NetEvent, hook: &mut dyn FaultHook) -> Output {
        self.now_ns = now_ns;
        let mut out = Output::default();
        match ev {
            NetEvent::LinkFree(l) => {
                let link = &mut self.links[l.0 as usize];
                debug_assert!(link.busy);
                link.busy = false;
                if let Element::Endpoint(a) = link.from {
                    self.eps[a.0 as usize].tx_busy = false;
                    self.progress(&mut out);
                    // Only signal readiness if progress did not immediately
                    // refill the transmitter (it cannot: software has not
                    // run), but keep the check for robustness.
                    if self.can_send(a) {
                        out.notifies.push(Notify::TxReady(a));
                    }
                } else {
                    self.progress(&mut out);
                }
            }
            NetEvent::Arrive(l, frame) => {
                // A link that went down mid-flight loses the frame: it must
                // never be delivered after the down edge, and no disposition
                // is drawn for it (scripted, not probabilistic).
                if self.link_down[l.0 as usize] {
                    hook.on_down_drop(l);
                    self.drop_in_transit(l, &mut out);
                } else {
                    match hook.on_transit(l, &frame, now_ns, self.cfg.hop_latency_ns) {
                        Transit::Deliver => self.finish_arrival(l, frame, hook, &mut out),
                        Transit::Drop => self.drop_in_transit(l, &mut out),
                        Transit::Corrupt => {
                            let mut f = frame;
                            f.corrupted = true;
                            self.stats.frames_corrupted += 1;
                            self.finish_arrival(l, f, hook, &mut out);
                        }
                        Transit::Delay(extra_ns) => {
                            // The buffer reservation stays held: a delayed frame
                            // still occupies its store-and-forward slot.
                            out.schedule
                                .push((extra_ns, NetEvent::ArriveDelayed(l, frame)));
                        }
                    }
                }
            }
            NetEvent::ArriveDelayed(l, frame) => {
                if self.link_down[l.0 as usize] {
                    hook.on_down_drop(l);
                    self.drop_in_transit(l, &mut out);
                } else {
                    self.finish_arrival(l, frame, hook, &mut out);
                }
            }
            NetEvent::CombFlush(c, seq) => self.comb_flush(c, seq, &mut out),
        }
        out
    }

    /// A frame completes its hop on `l`: convert the reservation into a
    /// buffered frame, unless the receiving endpoint is down (then the
    /// frame dies at the dead interface) or buffering it at a cluster port
    /// would exceed the cluster's sheddable-byte budget (then the frame is
    /// shed — deterministic overload degradation).
    fn finish_arrival(
        &mut self,
        l: LinkId,
        frame: Frame,
        hook: &mut dyn FaultHook,
        out: &mut Output,
    ) {
        {
            let link = &mut self.links[l.0 as usize];
            debug_assert!(link.reserved > 0);
            link.reserved -= 1;
        }
        let to = self.links[l.0 as usize].to;
        if let Element::Endpoint(a) = to {
            if self.down[a.0 as usize] {
                self.in_flight -= 1;
                self.stats.frames_dropped += 1;
                self.progress(out);
                return;
            }
        }
        // In-switch combining: a combinable frame arriving at a cluster
        // input merges into the coupler's held partial instead of
        // buffering. Entirely behind the one pointer test — non-collective
        // runs take the unchanged path below.
        let frame = if self.comb.is_some() {
            if let Element::Port(p) = to {
                match self.try_comb_absorb(p.cluster, Some(l), frame, out) {
                    None => {
                        self.progress(out);
                        return;
                    }
                    Some(f) => f,
                }
            } else {
                frame
            }
        } else {
            frame
        };
        if let Element::Port(p) = to {
            if (self.sheddable)(&frame) {
                let c = p.cluster.0 as usize;
                let cost = frame_cost(&frame);
                if self.budgets_active
                    && self.data_buf_bytes[c].saturating_add(cost) > self.byte_budget[c]
                {
                    // Shed: the slot reservation is already released, so
                    // upstream flow control sees the space free again.
                    self.in_flight -= 1;
                    self.stats.frames_shed += 1;
                    hook.on_overload_drop(l);
                    self.progress(out);
                    return;
                }
                // Accounted whether or not a budget is in force, so a budget
                // squeeze arriving mid-run sees accurate occupancy.
                self.data_buf_bytes[c] += cost;
                if self.data_buf_bytes[c] > self.data_bytes_hwm[c] {
                    self.data_bytes_hwm[c] = self.data_buf_bytes[c];
                }
            }
        }
        self.links[l.0 as usize].buf.push_back(frame);
        if let Element::Port(p) = to {
            self.note_cluster_buffered(p.cluster);
        }
        self.note_link_depth(l);
        if let Element::Endpoint(a) = to {
            out.notifies.push(Notify::RxArrived(a));
        }
        self.progress(out);
    }

    /// Record the current occupancy of `l` into its high-water mark.
    fn note_link_depth(&mut self, l: LinkId) {
        let link = &self.links[l.0 as usize];
        let depth = link.buf.len() + link.reserved;
        if depth > self.link_depth_hwm[l.0 as usize] {
            self.link_depth_hwm[l.0 as usize] = depth;
        }
    }

    /// Release the byte-budget charge of a frame leaving a cluster-port
    /// buffer. No-op unless the frame was counted at admission (the
    /// classifier is a pure function of the frame's kind, so it answers
    /// identically at admission and release).
    fn release_data_bytes(&mut self, cluster: ClusterId, frame: &Frame) {
        if (self.sheddable)(frame) {
            let c = cluster.0 as usize;
            let cost = frame_cost(frame);
            debug_assert!(self.data_buf_bytes[c] >= cost);
            self.data_buf_bytes[c] = self.data_buf_bytes[c].saturating_sub(cost);
        }
    }

    /// A frame was lost in transit on `l`: release its reservation (the
    /// slot it claimed frees, which may unblock upstream senders).
    fn drop_in_transit(&mut self, l: LinkId, out: &mut Output) {
        let link = &mut self.links[l.0 as usize];
        debug_assert!(link.reserved > 0);
        link.reserved -= 1;
        self.in_flight -= 1;
        self.stats.frames_dropped += 1;
        self.progress(out);
    }

    /// Number of frames waiting in an endpoint's receive FIFO.
    pub fn rx_depth(&self, node: NodeAddr) -> usize {
        self.links[self.eps[node.0 as usize].down.0 as usize]
            .buf
            .len()
    }

    /// Peek at the head of an endpoint's receive FIFO.
    pub fn rx_peek(&self, node: NodeAddr) -> Option<&Frame> {
        self.links[self.eps[node.0 as usize].down.0 as usize]
            .buf
            .front()
    }

    /// Software drains one frame from the endpoint's receive FIFO, freeing
    /// the hardware buffer slot (which may unblock upstream transmissions,
    /// reflected in the returned [`Output`]).
    pub fn rx_pop(&mut self, now_ns: u64, node: NodeAddr) -> (Option<Frame>, Output) {
        self.now_ns = now_ns;
        let down = self.eps[node.0 as usize].down;
        let frame = self.links[down.0 as usize].buf.pop_front();
        let mut out = Output::default();
        if let Some(f) = &frame {
            self.in_flight -= 1;
            self.stats.frames_delivered += 1;
            self.stats.payload_bytes_delivered += u64::from(f.payload.len());
            self.stats.per_endpoint_rx[node.0 as usize] += 1;
            self.progress(&mut out);
        }
        (frame, out)
    }

    /// Frames currently inside the fabric (registers, buffers, in flight).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Total transmitting time of the busiest link, in ns (diagnostics).
    pub fn max_link_busy_ns(&self) -> u64 {
        self.links.iter().map(|l| l.busy_ns).max().unwrap_or(0)
    }

    /// Per-link utilization snapshot: `(link, description, busy_ns,
    /// buffered frames)` for every directed link, in id order. The
    /// description names the two elements the link joins.
    pub fn link_report(&self) -> Vec<(LinkId, String, u64, usize)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let desc = format!("{} -> {}", elem_name(l.from), elem_name(l.to));
                (LinkId(i as u32), desc, l.busy_ns, l.buf.len())
            })
            .collect()
    }

    /// The cluster that owns directed link `l` for shard-partition
    /// purposes: the `from`-side cluster for inter-cluster cables, the
    /// endpoint's own cluster for endpoint up/down links.
    pub fn link_owner_cluster(&self, l: LinkId) -> ClusterId {
        match self.links[l.0 as usize].from {
            Element::Port(p) => p.cluster,
            Element::Endpoint(a) => self.topo.cluster_of(a),
        }
    }

    /// Number of directed links in the fabric.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// The endpoint→cluster link of `node` (its transmit side).
    pub fn endpoint_up_link(&self, node: NodeAddr) -> LinkId {
        self.eps[node.0 as usize].up
    }

    /// The cluster→endpoint link of `node` (its receive side). Useful for
    /// targeting fault injection at one receiver.
    pub fn endpoint_down_link(&self, node: NodeAddr) -> LinkId {
        self.eps[node.0 as usize].down
    }

    /// Install the classifier deciding which frames are eligible for
    /// overload shedding. Must be a pure function of the frame (the fabric
    /// consults it at both admission and release); control traffic should
    /// answer `false`. The default classifier sheds nothing.
    pub fn set_sheddable(&mut self, f: fn(&Frame) -> bool) {
        self.sheddable = f;
    }

    /// Set cluster `c`'s store-and-forward byte budget for sheddable
    /// frames. `u64::MAX` disables the budget. Frames already buffered are
    /// never retroactively dropped — only new arrivals are shed.
    pub fn set_cluster_byte_budget(&mut self, c: ClusterId, bytes: u64) {
        self.byte_budget[c.0 as usize] = bytes;
        self.budgets_active = self.byte_budget.iter().any(|&b| b != u64::MAX);
    }

    /// Cluster `c`'s current sheddable-byte budget.
    pub fn cluster_byte_budget(&self, c: ClusterId) -> u64 {
        self.byte_budget[c.0 as usize]
    }

    /// True iff any cluster currently has a finite byte budget (the fast
    /// guard the software layer uses to choose overload ride-out over
    /// give-up).
    pub fn overload_active(&self) -> bool {
        self.budgets_active
    }

    /// Bytes of sheddable frames currently buffered at cluster `c`.
    pub fn cluster_data_bytes(&self, c: ClusterId) -> u64 {
        self.data_buf_bytes[c.0 as usize]
    }

    /// High-water mark of sheddable bytes buffered at cluster `c`.
    pub fn cluster_data_bytes_hwm(&self, c: ClusterId) -> u64 {
        self.data_bytes_hwm[c.0 as usize]
    }

    /// The largest per-cluster sheddable-byte high-water mark (0 when the
    /// classifier sheds nothing or no data frame was ever buffered).
    pub fn max_cluster_data_bytes_hwm(&self) -> u64 {
        self.data_bytes_hwm.iter().copied().max().unwrap_or(0)
    }

    /// Occupancy high-water mark of link `l` (`buf + reserved` slots).
    pub fn link_depth_hwm(&self, l: LinkId) -> usize {
        self.link_depth_hwm[l.0 as usize]
    }

    /// Buffer-slot cap of link `l`.
    pub fn link_cap(&self, l: LinkId) -> usize {
        self.links[l.0 as usize].cap
    }

    /// True iff link `l` terminates at an endpoint's receive FIFO (such
    /// links may exceed their cap via [`Fabric::inject_arrival`] — the
    /// documented cross-shard bridge simplification — so depth oracles
    /// exempt them).
    pub fn link_ends_at_endpoint(&self, l: LinkId) -> bool {
        matches!(self.links[l.0 as usize].to, Element::Endpoint(_))
    }

    /// The largest occupancy high-water mark over links that terminate at a
    /// cluster port (the links whose caps the hardware flow control
    /// enforces unconditionally).
    pub fn max_port_link_depth_hwm(&self) -> usize {
        self.links
            .iter()
            .zip(&self.link_depth_hwm)
            .filter(|(l, _)| matches!(l.to, Element::Port(_)))
            .map(|(_, &h)| h)
            .max()
            .unwrap_or(0)
    }

    /// Materialize a frame in the destination endpoint's receive FIFO, as
    /// if it had just completed its final hop. This is the receiving half of
    /// the sharded engine's cross-shard bridge: the sending shard computed
    /// the full path latency up front, so the frame bypasses this fabric's
    /// links and appears directly at the endpoint at its arrival time.
    ///
    /// Deliberate simplification: the endpoint FIFO's slot cap is not
    /// enforced (VORX drains receive FIFOs unconditionally — "the VORX
    /// kernel reads in messages immediately when they arrive" — so an
    /// over-cap burst models a momentarily deeper FIFO rather than loss).
    /// A frame arriving at a down endpoint dies at the dead interface,
    /// exactly like [`NetEvent::Arrive`] handling.
    pub fn inject_arrival(&mut self, now_ns: u64, frame: Frame) -> Output {
        self.now_ns = now_ns;
        let mut out = Output::default();
        let dst = match &frame.dst {
            Dest::Unicast(a) => *a,
            Dest::Multicast(_) => panic!("bridged frames are unicast per target"),
        };
        if self.down[dst.0 as usize] {
            self.stats.frames_dropped += 1;
            return out;
        }
        // Bridged combinable frames merge at the destination's own star
        // coupler: the sharded engine delivers cross-shard frames in
        // deterministic `(arrival time, source shard, sequence)` order, so
        // the merge order — and therefore the combined trace — is a pure
        // function of that order, independent of worker count.
        let frame = if self.comb.is_some() {
            let cluster = self.topo.cluster_of(dst);
            self.in_flight += 1; // the held partial owns one in-flight unit
            match self.try_comb_absorb(cluster, None, frame, &mut out) {
                None => return out,
                Some(f) => {
                    self.in_flight -= 1; // not combinable after all
                    f
                }
            }
        } else {
            frame
        };
        let down = self.eps[dst.0 as usize].down;
        self.links[down.0 as usize].buf.push_back(frame);
        self.note_link_depth(down);
        self.in_flight += 1;
        out.notifies.push(Notify::RxArrived(dst));
        out
    }

    /// Lower bound (ns) on the fabric latency of any frame crossing a
    /// cluster boundary, over the routing tables currently in force: the
    /// minimum cross-cluster link count times the per-link latency of a
    /// header-only frame. `None` for single-cluster topologies. This is the
    /// sharded engine's lookahead window.
    pub fn lookahead_ns(&self) -> Option<u64> {
        self.topo
            .min_cross_cluster_links()
            .map(|links| links as u64 * self.header_link_latency_ns())
    }

    /// Per-link latency (ns) of a header-only frame — the unit that converts
    /// [`Topology::cluster_link_counts`] into the sharded engine's per-pair
    /// lookahead matrix (no frame is smaller, so `links × this` lower-bounds
    /// the fabric latency of any frame on a path of `links` links).
    pub fn header_link_latency_ns(&self) -> u64 {
        self.cfg.link_latency_ns(crate::frame::HEADER_BYTES)
    }

    /// Uncontended store-and-forward latency (ns) of a header-only frame
    /// from `src` to `dst` over the routing tables *currently* in force —
    /// detours lengthen the answer, heals shrink it back — or `None` when
    /// no route survives. Walks the implicit routes via
    /// [`Topology::cluster_path_into`] into a hoisted scratch buffer, so
    /// probing is allocation-free in steady state: the scale campaign calls
    /// this per churn cycle on 10⁵–10⁶-endpoint worlds to record detour
    /// stretch without perturbing the allocator.
    pub fn probe_route_ns(&mut self, src: NodeAddr, dst: NodeAddr) -> Option<u64> {
        let mut path = std::mem::take(&mut self.path_scratch);
        let ok = self.topo.cluster_path_into(src, dst, &mut path);
        // Endpoint up-link + one link per inter-cluster hop + down-link.
        let links = path.len() as u64 + 1;
        self.path_scratch = path;
        ok.then(|| links * self.header_link_latency_ns())
    }

    /// Register collective group `group`: frames of `kind` whose `seq`
    /// carries this group id (see [`crate::combine::enc_seq`]) merge inside
    /// the star couplers on their way to `root`. This call is what *arms*
    /// the combining machinery — before the first registration the fabric's
    /// arrival paths are bit-for-bit the non-collective ones.
    ///
    /// `path_members` are the members whose contributions reach `root`
    /// through this fabric's links (under the sharded engine: the members
    /// co-resident with the root; elsewhere: everyone). They seed the
    /// per-cluster expected counts that let a coupler flush a completed
    /// subtree early instead of waiting out the combining window. `total`
    /// is the whole group size — the root's own coupler waits for all of
    /// it, bridged contributions included.
    pub fn comb_register_group(
        &mut self,
        group: u32,
        kind: u16,
        path_members: &[NodeAddr],
        root: NodeAddr,
        total: u32,
    ) {
        let n_clusters = self.topo.n_clusters();
        let mut expected = vec![0u32; n_clusters];
        let mut path = std::mem::take(&mut self.path_scratch);
        for &m in path_members {
            if self.topo.cluster_path_into(m, root, &mut path) {
                for c in &path {
                    expected[c.0 as usize] += 1;
                }
            }
        }
        self.path_scratch = path;
        expected[self.topo.cluster_of(root).0 as usize] = total;
        let comb = self.comb.get_or_insert_with(|| {
            Box::new(Comb {
                groups: HashMap::new(),
                entries: HashMap::new(),
            })
        });
        comb.groups.insert(group, CombGroup { kind, expected });
    }

    /// True iff at least one collective group is registered (combining
    /// armed).
    pub fn comb_armed(&self) -> bool {
        self.comb.is_some()
    }

    /// Held partial combines currently live in the fabric's switches
    /// (quiescence oracles: 0 once all collective traffic drained).
    pub fn comb_entries_live(&self) -> usize {
        self.comb.as_ref().map_or(0, |c| c.entries.len())
    }

    /// Try to merge `frame` into the partial combine at `cluster`. Returns
    /// `None` when absorbed (the caller must not buffer the frame — the
    /// held partial now owns its in-flight unit) or `Some(frame)` when the
    /// frame is not combinable and must continue on the normal path.
    ///
    /// The caller guarantees the frame is already counted in `in_flight`.
    fn try_comb_absorb(
        &mut self,
        cluster: ClusterId,
        arrival: Option<LinkId>,
        frame: Frame,
        out: &mut Output,
    ) -> Option<Frame> {
        use std::collections::hash_map::Entry;
        if frame.corrupted {
            // A corrupted operand must never poison a merged value: let it
            // travel on and die at the receiver's CRC check, so the count
            // it carried goes missing and the attempt retries.
            return Some(frame);
        }
        let dst = match &frame.dst {
            Dest::Unicast(a) => *a,
            Dest::Multicast(_) => return Some(frame),
        };
        let Some(comb) = self.comb.as_mut() else {
            return Some(frame);
        };
        let group = crate::combine::seq_group(frame.seq);
        let expected = match comb.groups.get(&group) {
            Some(g) if g.kind == frame.kind => g.expected[cluster.0 as usize],
            _ => return Some(frame),
        };
        let Some((op, value, count)) = crate::combine::unpack(&frame.payload) else {
            return Some(frame);
        };
        let now = self.now_ns;
        let alu = self.cfg.comb_alu_ns;
        match comb.entries.entry((cluster.0, frame.seq)) {
            Entry::Occupied(mut e) => {
                let ent = e.get_mut();
                if ent.op != op || ent.dst != dst {
                    return Some(frame); // malformed mix: do not merge
                }
                ent.value = ent.op.apply(ent.value, value);
                ent.count += count;
                ent.ready_at = ent.ready_at.max(now) + alu;
                if ent.arrival.is_none() {
                    ent.arrival = arrival;
                }
                self.stats.frames_combined += 1;
                self.in_flight -= 1; // two frames became one held partial
                if expected > 0 && ent.count >= expected {
                    let at = ent.ready_at - now;
                    out.schedule
                        .push((at, NetEvent::CombFlush(cluster, frame.seq)));
                }
                None
            }
            Entry::Vacant(v) => {
                let seq = frame.seq;
                v.insert(CombEntry {
                    op,
                    value,
                    count,
                    ready_at: now,
                    src: frame.src,
                    dst,
                    kind: frame.kind,
                    arrival,
                });
                // One deadline per entry: immediately when the expected
                // subtree is already complete, else the window backstop
                // (which re-arms against `ready_at` if merges are still in
                // the ALU when it fires).
                let at = if expected > 0 && count >= expected {
                    0
                } else {
                    self.cfg.comb_window_ns
                };
                out.schedule.push((at, NetEvent::CombFlush(cluster, seq)));
                None
            }
        }
    }

    /// A combining deadline fired: flush the partial at `(cluster, seq)`
    /// onward, unless it already flushed (no-op) or its ALU is still
    /// folding (re-arm for the remainder).
    fn comb_flush(&mut self, cluster: ClusterId, seq: u64, out: &mut Output) {
        let now = self.now_ns;
        let Some(comb) = self.comb.as_mut() else {
            return;
        };
        let Some(ent) = comb.entries.get(&(cluster.0, seq)) else {
            return;
        };
        if ent.ready_at > now {
            out.schedule
                .push((ent.ready_at - now, NetEvent::CombFlush(cluster, seq)));
            return;
        }
        let ent = comb
            .entries
            .remove(&(cluster.0, seq))
            .expect("checked just above");
        self.stats.comb_flushes += 1;
        let frame = Frame {
            src: ent.src,
            dst: Dest::Unicast(ent.dst),
            kind: ent.kind,
            seq,
            payload: crate::combine::pack_hw(ent.op, ent.value, ent.count),
            corrupted: false,
        };
        match ent.arrival {
            // The combined frame re-enters forwarding where its first
            // contribution arrived. It is *not* re-absorbed here (combining
            // happens only on arrival at a coupler), so it forwards toward
            // the root and merges again at the next coupler — recursive
            // combining at gateway levels falls out of this re-entry.
            Some(l) => {
                self.links[l.0 as usize].buf.push_back(frame);
                self.note_cluster_buffered(cluster);
                self.note_link_depth(l);
                self.progress(out);
            }
            // Every contribution arrived through the cross-shard bridge:
            // the entry sits at the root's own cluster and the bridge
            // already charged full path latency, so the flush lands in the
            // root's receive FIFO like any bridged arrival.
            None => {
                if self.down[ent.dst.0 as usize] {
                    self.in_flight -= 1;
                    self.stats.frames_dropped += 1;
                    return;
                }
                let down = self.eps[ent.dst.0 as usize].down;
                self.links[down.0 as usize].buf.push_back(frame);
                self.note_link_depth(down);
                out.notifies.push(Notify::RxArrived(ent.dst));
            }
        }
    }

    /// Start every transmission that can start, repeating until quiescent.
    /// A frame was buffered at one of `cluster`'s input ports.
    fn note_cluster_buffered(&mut self, cluster: ClusterId) {
        let c = cluster.0 as usize;
        self.cluster_buffered[c] += 1;
        if self.cluster_buffered[c] == 1 {
            sorted_insert(&mut self.active_clusters, cluster.0);
        }
    }

    /// A frame left one of `cluster`'s input-port buffers.
    fn note_cluster_drained(&mut self, cluster: ClusterId) {
        let c = cluster.0 as usize;
        debug_assert!(self.cluster_buffered[c] > 0);
        self.cluster_buffered[c] -= 1;
        if self.cluster_buffered[c] == 0 {
            sorted_remove(&mut self.active_clusters, cluster.0);
        }
    }

    fn progress(&mut self, out: &mut Output) {
        loop {
            let mut changed = false;

            // Under a partition, head frames with no surviving route would
            // block their input queue forever; drop them (and strip dead
            // targets from multicast heads) instead of wedging. Never runs
            // on a fault-free fabric.
            if self.links_down > 0 && self.purge_unroutable_heads() {
                changed = true;
            }

            // Endpoint injections: scan only endpoints with a loaded
            // output register, ascending — the order the old full 0..n
            // sweep visited its non-trivial entries. Snapshot first;
            // injection removes entries mid-scan.
            let mut scan = std::mem::take(&mut self.scan_scratch);
            scan.clear();
            scan.extend_from_slice(&self.pending_eps);
            for &ei in &scan {
                let i = ei as usize;
                let up = self.eps[i].up;
                if !self.eps[i].tx_busy
                    && self.eps[i].out_reg.is_some()
                    && !self.link_down[up.0 as usize]
                    && !self.links[up.0 as usize].busy
                    && self.links[up.0 as usize].can_accept()
                {
                    let frame = self.eps[i].out_reg.take().expect("checked");
                    sorted_remove(&mut self.pending_eps, ei);
                    self.eps[i].tx_busy = true;
                    self.start_tx(up, frame, out);
                    changed = true;
                }
            }

            // Cluster forwarding, one output port at a time, fair
            // round-robin over that cluster's inputs. Only clusters with
            // buffered frames can forward anything.
            scan.clear();
            scan.extend_from_slice(&self.active_clusters);
            for &ci in &scan {
                let c = ci as usize;
                for port in 0..PORTS_PER_CLUSTER {
                    let Some(out_link) = self.port_out[c][port] else {
                        continue;
                    };
                    if self.link_down[out_link.0 as usize]
                        || self.links[out_link.0 as usize].busy
                        || !self.links[out_link.0 as usize].can_accept()
                    {
                        continue;
                    }
                    if self.forward_one(ClusterId(ci), port as u8, out_link, out) {
                        changed = true;
                    }
                }
            }
            self.scan_scratch = scan;

            if !changed {
                return;
            }
        }
    }

    /// Drop buffered head frames with no surviving route and strip
    /// unreachable targets from multicast heads. Returns true if anything
    /// changed. Only called while at least one link is down.
    fn purge_unroutable_heads(&mut self) -> bool {
        let mut changed = false;
        // Only clusters holding buffered frames have heads to purge.
        // Snapshot (the body drains counts); local vec is fine — this path
        // only runs while links are down.
        let active: Vec<u32> = self.active_clusters.clone();
        for ci in active {
            let c = ci as usize;
            let cluster = ClusterId(ci);
            for k in 0..self.cluster_inputs[c].len() {
                let input = self.cluster_inputs[c][k];
                let Some(head) = self.links[input.0 as usize].buf.front() else {
                    continue;
                };
                let targets = head.dst.targets();
                let live: Vec<NodeAddr> = targets
                    .iter()
                    .copied()
                    .filter(|t| self.topo.route(cluster, *t) != u8::MAX)
                    .collect();
                if live.len() == targets.len() {
                    continue;
                }
                let lost = (targets.len() - live.len()) as u64;
                let head = self.links[input.0 as usize]
                    .buf
                    .front_mut()
                    .expect("checked");
                if live.is_empty() {
                    let dead = self.links[input.0 as usize]
                        .buf
                        .pop_front()
                        .expect("checked");
                    self.note_cluster_drained(cluster);
                    self.release_data_bytes(cluster, &dead);
                    self.in_flight -= 1;
                } else if live.len() == 1 {
                    head.dst = Dest::Unicast(live[0]);
                } else {
                    head.dst = Dest::Multicast(live.into());
                }
                self.stats.frames_dropped += lost;
                changed = true;
            }
        }
        changed
    }

    /// Try to start one transmission on `out_link` (output `port` of
    /// `cluster`), taking the next input in round-robin order whose head
    /// frame routes (at least partially) through this port. Returns true if
    /// a transmission started.
    fn forward_one(
        &mut self,
        cluster: ClusterId,
        port: u8,
        out_link: LinkId,
        out: &mut Output,
    ) -> bool {
        let inputs = &self.cluster_inputs[cluster.0 as usize];
        let n = inputs.len();
        if n == 0 {
            return false;
        }
        let start = self.rr[out_link.0 as usize] % n;
        // The subset of the head's targets leaving through `port`, collected
        // into the hoisted scratch (target order preserved). Unicast heads —
        // the hot path — and multicast heads whose targets share the port
        // take the no-split branch below, which forwards the frame without
        // allocating anything.
        let mut via = std::mem::take(&mut self.fwd_scratch);
        let mut hit = false;
        for k in 0..n {
            let input = inputs[(start + k) % n];
            let Some(head) = self.links[input.0 as usize].buf.front() else {
                continue;
            };
            via.clear();
            let total = head.dst.targets().len();
            for &t in head.dst.targets() {
                if self.topo.route(cluster, t) == port {
                    via.push(t);
                }
            }
            if via.is_empty() {
                continue;
            }
            // Found a frame (or a multicast branch of one) for this port.
            self.rr[out_link.0 as usize] = (start + k + 1) % n;
            // Count frames leaving through a port the fault-free tables
            // would not have chosen (adaptive reroute). The generation
            // guard keeps this off the fault-free hot path.
            if self.topo.generation() > 0
                && via
                    .iter()
                    .any(|t| self.topo.base_route(cluster, *t) != port)
            {
                self.stats.frames_rerouted += 1;
            }
            if via.len() == total {
                // Every remaining target leaves through this port: forward
                // the buffered frame itself. No destination list is copied
                // and no branch is replicated.
                let mut done = self.links[input.0 as usize]
                    .buf
                    .pop_front()
                    .expect("checked");
                self.note_cluster_drained(cluster);
                self.release_data_bytes(cluster, &done);
                // A split can leave a one-target `Multicast` head behind;
                // forward it as the `Unicast` it now is, so delivered
                // frames are identical to the pre-scratch grouping code.
                if let Dest::Multicast(ts) = &done.dst {
                    if ts.len() == 1 {
                        done.dst = Dest::Unicast(ts[0]);
                    }
                }
                self.start_tx(out_link, done, out);
            } else {
                let head = self.links[input.0 as usize]
                    .buf
                    .front_mut()
                    .expect("checked");
                let sub_dst = if via.len() == 1 {
                    Dest::Unicast(via[0])
                } else {
                    Dest::Multicast(via.as_slice().into())
                };
                // Replicate the branch by hand instead of `head.clone()`:
                // the payload is a refcounted slice (every fan-out branch
                // shares the same bytes), and cloning `head.dst` only to
                // overwrite it would copy the target list a second time.
                let copy = Frame {
                    src: head.src,
                    dst: sub_dst,
                    kind: head.kind,
                    seq: head.seq,
                    payload: head.payload.clone(),
                    corrupted: head.corrupted,
                };
                // Remove the transmitted targets from the head frame; the
                // split branch is a new frame inside the fabric.
                let remaining: Vec<NodeAddr> = head
                    .dst
                    .targets()
                    .iter()
                    .copied()
                    .filter(|t| !via.contains(t))
                    .collect();
                head.dst = Dest::Multicast(remaining.into());
                self.in_flight += 1;
                self.start_tx(out_link, copy, out);
            }
            hit = true;
            break;
        }
        self.fwd_scratch = via;
        hit
    }

    fn start_tx(&mut self, l: LinkId, frame: Frame, out: &mut Output) {
        let ser = self.cfg.serialize_ns(frame.wire_bytes());
        let link = &mut self.links[l.0 as usize];
        debug_assert!(!link.busy && link.can_accept());
        link.busy = true;
        link.reserved += 1;
        link.busy_ns += ser;
        self.note_link_depth(l);
        out.schedule.push((ser, NetEvent::LinkFree(l)));
        out.schedule
            .push((ser + self.cfg.hop_latency_ns, NetEvent::Arrive(l, frame)));
    }
}

/// Insert `v` into sorted `vec` if absent. Capacity is retained across
/// the run, so steady-state candidate-set churn is allocation-free.
fn sorted_insert(vec: &mut Vec<u32>, v: u32) {
    if let Err(pos) = vec.binary_search(&v) {
        vec.insert(pos, v);
    }
}

/// Remove `v` from sorted `vec` if present.
fn sorted_remove(vec: &mut Vec<u32>, v: u32) {
    if let Ok(pos) = vec.binary_search(&v) {
        vec.remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::StandaloneNet;
    use crate::frame::Payload;

    fn two_node_net() -> StandaloneNet {
        StandaloneNet::new(Fabric::new(
            Topology::single_cluster(2).unwrap(),
            NetConfig::paper_1988(),
        ))
    }

    #[test]
    fn unicast_delivery_same_cluster() {
        let mut net = two_node_net();
        net.send_at(
            0,
            Frame::unicast(NodeAddr(0), NodeAddr(1), 7, 42, Payload::Synthetic(4)),
        );
        net.run();
        assert_eq!(net.delivered.len(), 1);
        let (t, to, f) = &net.delivered[0];
        assert_eq!(*to, NodeAddr(1));
        assert_eq!(f.kind, 7);
        assert_eq!(f.seq, 42);
        // Two hops (node->cluster, cluster->node), each 40 B * 50 ns + 500 ns.
        assert_eq!(*t, 2 * (40 * 50 + 500));
        assert_eq!(net.fabric.in_flight(), 0);
    }

    #[test]
    fn payload_data_survives_transit() {
        let mut net = two_node_net();
        net.send_at(
            0,
            Frame::unicast(
                NodeAddr(0),
                NodeAddr(1),
                0,
                0,
                Payload::copy_from(&[9, 8, 7, 6]),
            ),
        );
        net.run();
        assert_eq!(
            net.delivered[0].2.payload.bytes().unwrap().as_ref(),
            &[9, 8, 7, 6]
        );
    }

    #[test]
    fn multi_hop_crosses_clusters() {
        let topo = Topology::incomplete_hypercube(4, 2).unwrap();
        let hops = topo.hops(NodeAddr(0), NodeAddr(7));
        assert_eq!(hops, 2); // cluster 0 -> 1 -> 3 or 0 -> 2 -> 3
        let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
        net.send_at(
            0,
            Frame::unicast(NodeAddr(0), NodeAddr(7), 0, 0, Payload::Synthetic(100)),
        );
        net.run();
        assert_eq!(net.delivered.len(), 1);
        // Store-and-forward over 4 links (node->c0->c3' path->node): time is
        // 4 * (serialize + hop latency) for (100+36) bytes.
        let per_hop = 136 * 50 + 500;
        assert_eq!(net.delivered[0].0, 4 * per_hop);
    }

    #[test]
    fn lookahead_matches_min_cross_cluster_path() {
        // Hypercube: adjacent clusters one hop apart, plus the two endpoint
        // links; a header-only frame pays 36 * 50 + 500 ns per link.
        let f = Fabric::new(
            Topology::incomplete_hypercube(10, 7).unwrap(),
            NetConfig::paper_1988(),
        );
        assert_eq!(f.lookahead_ns(), Some(3 * (36 * 50 + 500)));
        // Single cluster: nothing ever crosses a shard boundary.
        let f1 = Fabric::new(
            Topology::single_cluster(4).unwrap(),
            NetConfig::paper_1988(),
        );
        assert_eq!(f1.lookahead_ns(), None);
    }

    #[test]
    fn inject_arrival_lands_in_rx_fifo() {
        let mut fab = Fabric::new(
            Topology::single_cluster(2).unwrap(),
            NetConfig::paper_1988(),
        );
        let f = Frame::unicast(NodeAddr(0), NodeAddr(1), 7, 1, Payload::Synthetic(8));
        let out = fab.inject_arrival(100, f);
        assert!(matches!(out.notifies[..], [Notify::RxArrived(NodeAddr(1))]));
        assert_eq!(fab.rx_depth(NodeAddr(1)), 1);
        assert_eq!(fab.in_flight(), 1);
        let (frame, _) = fab.rx_pop(200, NodeAddr(1));
        assert_eq!(frame.unwrap().kind, 7);
        assert_eq!(fab.in_flight(), 0);
        assert_eq!(fab.stats.frames_delivered, 1);
    }

    #[test]
    fn inject_arrival_at_down_endpoint_is_dropped() {
        let mut fab = Fabric::new(
            Topology::single_cluster(2).unwrap(),
            NetConfig::paper_1988(),
        );
        let _ = fab.set_endpoint_down(0, NodeAddr(1), true);
        let f = Frame::unicast(NodeAddr(0), NodeAddr(1), 7, 1, Payload::Synthetic(8));
        let out = fab.inject_arrival(100, f);
        assert!(out.notifies.is_empty());
        assert_eq!(fab.rx_depth(NodeAddr(1)), 0);
        assert_eq!(fab.stats.frames_dropped, 1);
    }

    #[test]
    fn back_to_back_frames_keep_fifo_order() {
        let mut net = two_node_net();
        // Queue three sends; the driver retries TxBusy when TxReady fires.
        for seq in 0..3 {
            net.send_at(
                0,
                Frame::unicast(NodeAddr(0), NodeAddr(1), 0, seq, Payload::Synthetic(512)),
            );
        }
        net.run();
        let seqs: Vec<u64> = net.delivered.iter().map(|(_, _, f)| f.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn oversize_frame_rejected() {
        let mut f = Fabric::new(
            Topology::single_cluster(2).unwrap(),
            NetConfig::paper_1988(),
        );
        let err = f
            .try_send(
                0,
                Frame::unicast(NodeAddr(0), NodeAddr(1), 0, 0, Payload::Synthetic(2000)),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            SendError::Invalid(FrameError::TooLong { .. })
        ));
    }

    #[test]
    fn tx_busy_until_ready() {
        let mut f = Fabric::new(
            Topology::single_cluster(2).unwrap(),
            NetConfig::paper_1988(),
        );
        let mk = |seq| Frame::unicast(NodeAddr(0), NodeAddr(1), 0, seq, Payload::Synthetic(4));
        assert!(f.can_send(NodeAddr(0)));
        f.try_send(0, mk(0)).unwrap();
        assert!(!f.can_send(NodeAddr(0)));
        assert_eq!(f.try_send(0, mk(1)).unwrap_err(), SendError::TxBusy);
    }

    #[test]
    fn multicast_replicates_in_fabric_not_at_source() {
        // 2 clusters, 3 endpoints each; node 0 multicasts to 3..6 on the
        // other cluster: the inter-cluster link must carry the frame ONCE.
        let topo = Topology::incomplete_hypercube(2, 3).unwrap();
        let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
        net.send_at(
            0,
            Frame {
                src: NodeAddr(0),
                dst: Dest::Multicast(vec![NodeAddr(3), NodeAddr(4), NodeAddr(5)].into()),
                kind: 0,
                seq: 0,
                payload: Payload::Synthetic(1024),
                corrupted: false,
            },
        );
        net.run();
        assert_eq!(net.delivered.len(), 3);
        let mut who: Vec<u32> = net.delivered.iter().map(|(_, to, _)| to.0).collect();
        who.sort_unstable();
        assert_eq!(who, vec![3, 4, 5]);
        // Source sent exactly one frame.
        assert_eq!(net.fabric.stats.frames_sent, 1);
        assert_eq!(net.fabric.stats.frames_delivered, 3);
        assert_eq!(net.fabric.in_flight(), 0);
    }

    #[test]
    fn multicast_to_local_and_remote_targets() {
        let topo = Topology::incomplete_hypercube(2, 3).unwrap();
        let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
        net.send_at(
            0,
            Frame {
                src: NodeAddr(0),
                dst: Dest::Multicast(vec![NodeAddr(1), NodeAddr(2), NodeAddr(4)].into()),
                kind: 0,
                seq: 9,
                payload: Payload::Synthetic(64),
                corrupted: false,
            },
        );
        net.run();
        let mut who: Vec<u32> = net.delivered.iter().map(|(_, to, _)| to.0).collect();
        who.sort_unstable();
        assert_eq!(who, vec![1, 2, 4]);
    }

    #[test]
    fn many_to_one_never_loses_frames() {
        // The §2 scenario that broke the S/NET: many senders target one
        // receiver simultaneously. The HPC must deliver everything.
        let topo = Topology::single_cluster(12).unwrap();
        let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
        for src in 1..12u32 {
            for seq in 0..5 {
                net.send_at(
                    0,
                    Frame::unicast(NodeAddr(src), NodeAddr(0), 0, seq, Payload::Synthetic(1024)),
                );
            }
        }
        net.run();
        assert_eq!(net.delivered.len(), 55);
        assert_eq!(net.fabric.in_flight(), 0);
        // Fairness: every sender's frame 0 arrives before any sender's
        // frame 4 (round-robin arbitration cannot starve anyone).
        let pos_of = |src: u32, seq: u64| {
            net.delivered
                .iter()
                .position(|(_, _, f)| f.src == NodeAddr(src) && f.seq == seq)
                .unwrap()
        };
        for src in 1..12u32 {
            for other in 1..12u32 {
                assert!(
                    pos_of(src, 0) < pos_of(other, 4),
                    "sender {src} frame 0 starved behind {other} frame 4"
                );
            }
        }
    }

    #[test]
    fn per_pair_fifo_under_contention() {
        let topo = Topology::incomplete_hypercube(4, 3).unwrap();
        let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
        let n = net.fabric.topology().n_endpoints() as u32;
        for src in 0..n {
            for seq in 0..4 {
                let dst = (src + 1) % n;
                net.send_at(
                    0,
                    Frame::unicast(
                        NodeAddr(src),
                        NodeAddr(dst),
                        0,
                        seq,
                        Payload::Synthetic(256),
                    ),
                );
            }
        }
        net.run();
        assert_eq!(net.delivered.len(), n as usize * 4);
        // FIFO per (src, dst) pair.
        for src in 0..n {
            let seqs: Vec<u64> = net
                .delivered
                .iter()
                .filter(|(_, _, f)| f.src == NodeAddr(src))
                .map(|(_, _, f)| f.seq)
                .collect();
            assert_eq!(seqs, vec![0, 1, 2, 3], "src {src} reordered");
        }
    }

    #[test]
    fn stats_account_bytes() {
        let mut net = two_node_net();
        net.send_at(
            0,
            Frame::unicast(NodeAddr(0), NodeAddr(1), 0, 0, Payload::Synthetic(100)),
        );
        net.run();
        assert_eq!(net.fabric.stats.payload_bytes_delivered, 100);
        assert_eq!(net.fabric.stats.per_endpoint_tx[0], 1);
        assert_eq!(net.fabric.stats.per_endpoint_rx[1], 1);
        assert!(net.fabric.max_link_busy_ns() > 0);
    }

    #[test]
    fn combining_merges_upward_frames() {
        use crate::combine::{self, CombOp};
        let topo = Topology::incomplete_hypercube(4, 3).unwrap(); // 12 endpoints
        let mut fab = Fabric::new(topo, NetConfig::paper_1988());
        let members: Vec<NodeAddr> = (0..12).map(NodeAddr).collect();
        let root = NodeAddr(0);
        fab.comb_register_group(5, 30, &members, root, 12);
        assert!(fab.comb_armed());
        let mut net = StandaloneNet::new(fab);
        let seq = combine::enc_seq(5, 1, 0);
        for m in 1..12u32 {
            net.send_at(
                0,
                Frame::unicast(
                    NodeAddr(m),
                    root,
                    30,
                    seq,
                    combine::pack(CombOp::Sum, u64::from(m), 1),
                ),
            );
        }
        net.run();
        // The root receives merged partials — far fewer frames than the 11
        // contributions — whose counts and values fold to the exact totals.
        let (mut total, mut cnt) = (0u64, 0u32);
        for (_, to, f) in &net.delivered {
            assert_eq!(*to, root);
            assert_eq!(f.kind, 30);
            assert_eq!(f.seq, seq);
            let (op, v, c) = combine::unpack(&f.payload).unwrap();
            assert_eq!(op, CombOp::Sum);
            total += v;
            cnt += c;
        }
        assert_eq!(cnt, 11);
        assert_eq!(total, (1..12).sum::<u64>());
        assert!(
            net.delivered.len() <= 4,
            "expected heavy merging, got {} frames",
            net.delivered.len()
        );
        assert!(net.fabric.stats.frames_combined > 0);
        assert_eq!(net.fabric.comb_entries_live(), 0);
        assert_eq!(net.fabric.in_flight(), 0);
    }

    #[test]
    fn combining_early_flush_beats_window() {
        use crate::combine::{self, CombOp};
        // All 12 members contribute (root too): every coupler sees its full
        // expected subtree, so nothing waits out the 20 us window.
        let topo = Topology::incomplete_hypercube(4, 3).unwrap();
        let mut fab = Fabric::new(topo, NetConfig::paper_1988());
        let members: Vec<NodeAddr> = (0..12).map(NodeAddr).collect();
        let root = NodeAddr(0);
        fab.comb_register_group(5, 30, &members, root, 12);
        let mut net = StandaloneNet::new(fab);
        let seq = combine::enc_seq(5, 1, 0);
        for m in 0..12u32 {
            net.send_at(
                0,
                Frame::unicast(
                    NodeAddr(m),
                    root,
                    30,
                    seq,
                    combine::pack(CombOp::Max, u64::from(m) * 7, 1),
                ),
            );
        }
        net.run();
        let window = NetConfig::paper_1988().comb_window_ns;
        let last = net.delivered.iter().map(|(t, _, _)| *t).max().unwrap();
        assert!(
            last < window,
            "full subtree should flush early, finished at {last} ns"
        );
        let (mut best, mut cnt) = (0u64, 0u32);
        for (_, _, f) in &net.delivered {
            let (_, v, c) = combine::unpack(&f.payload).unwrap();
            best = best.max(v);
            cnt += c;
        }
        assert_eq!(cnt, 12);
        assert_eq!(best, 77);
        assert_eq!(net.fabric.in_flight(), 0);
    }

    fn budget_net(nodes: usize, budget: u64) -> StandaloneNet {
        let cfg = NetConfig {
            switch_byte_budget: budget,
            ..NetConfig::paper_1988()
        };
        let mut fab = Fabric::new(Topology::single_cluster(nodes).unwrap(), cfg);
        fab.set_sheddable(|f| f.kind == 9);
        StandaloneNet::new(fab)
    }

    #[test]
    fn zero_budget_sheds_data_but_not_control() {
        let mut net = budget_net(2, 0);
        net.send_at(
            0,
            Frame::unicast(NodeAddr(0), NodeAddr(1), 9, 1, Payload::Synthetic(64)),
        );
        net.send_at(
            100_000,
            Frame::unicast(NodeAddr(0), NodeAddr(1), 7, 2, Payload::Synthetic(64)),
        );
        net.run();
        // The data frame dies at the switch; the control frame sails through.
        assert_eq!(net.delivered.len(), 1);
        assert_eq!(net.delivered[0].2.kind, 7);
        assert_eq!(net.fabric.stats.frames_shed, 1);
        assert_eq!(net.fabric.in_flight(), 0);
    }

    #[test]
    fn budget_admits_until_full_then_sheds_deterministically() {
        // Three 100 B data frames (136 wire bytes each) converge on one
        // receiver under a 150 B budget. The first arrival cuts straight
        // through to the (idle) output port, the second buffers while that
        // port is busy, and the third finds the budget exhausted and is
        // shed — deterministically the same victim on every run.
        let mut net = budget_net(4, 150);
        for (src, seq) in [(0u32, 10u64), (2, 20), (3, 30)] {
            net.send_at(
                0,
                Frame::unicast(NodeAddr(src), NodeAddr(1), 9, seq, Payload::Synthetic(100)),
            );
        }
        net.run();
        let mut got: Vec<u64> = net.delivered.iter().map(|(_, _, f)| f.seq).collect();
        got.sort_unstable();
        assert_eq!(got, vec![10, 20], "third arrival is the victim");
        assert_eq!(net.fabric.stats.frames_shed, 1);
        let c = ClusterId(0);
        assert_eq!(net.fabric.cluster_data_bytes_hwm(c), 136);
        assert_eq!(net.fabric.cluster_data_bytes(c), 0, "budget fully released");
    }

    #[test]
    fn mid_run_squeeze_sees_accurate_occupancy() {
        // Bytes are accounted even while budgets are disabled, so a squeeze
        // installed mid-run inherits a correct occupancy picture and the
        // release path never underflows.
        let mut net = budget_net(2, u64::MAX);
        assert!(!net.fabric.overload_active());
        net.send_at(
            0,
            Frame::unicast(NodeAddr(0), NodeAddr(1), 9, 1, Payload::Synthetic(100)),
        );
        net.run();
        assert_eq!(net.delivered.len(), 1);
        assert_eq!(net.fabric.cluster_data_bytes_hwm(ClusterId(0)), 136);
        net.fabric.set_cluster_byte_budget(ClusterId(0), 0);
        assert!(net.fabric.overload_active());
        let t = net.now() + 1;
        net.send_at(
            t,
            Frame::unicast(NodeAddr(0), NodeAddr(1), 9, 2, Payload::Synthetic(100)),
        );
        net.run();
        assert_eq!(net.delivered.len(), 1);
        assert_eq!(net.fabric.stats.frames_shed, 1);
    }

    #[test]
    fn depth_high_water_marks_track_occupancy() {
        let topo = Topology::single_cluster(12).unwrap();
        let cfg = NetConfig::paper_1988();
        let mut net = StandaloneNet::new(Fabric::new(topo, cfg));
        for src in 1..12u32 {
            for seq in 0..5 {
                net.send_at(
                    0,
                    Frame::unicast(NodeAddr(src), NodeAddr(0), 0, seq, Payload::Synthetic(1024)),
                );
            }
        }
        net.run();
        // Port-side occupancy peaked somewhere but never past the hardware
        // flow-control cap — that is the invariant the soak oracle checks.
        let hwm = net.fabric.max_port_link_depth_hwm();
        assert!(hwm >= 1);
        assert!(hwm <= cfg.cluster_port_slots);
        // Per-link accessors agree with the hardware shape.
        let rx = net.fabric.endpoint_down_link(NodeAddr(0));
        assert!(net.fabric.link_ends_at_endpoint(rx));
        assert_eq!(net.fabric.link_cap(rx), cfg.endpoint_rx_slots);
        assert!(net.fabric.link_depth_hwm(rx) >= 1);
        let up = net.fabric.endpoint_up_link(NodeAddr(1));
        assert!(!net.fabric.link_ends_at_endpoint(up));
        assert_eq!(net.fabric.link_cap(up), cfg.cluster_port_slots);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::driver::StandaloneNet;
    use crate::frame::Payload;

    /// Scripted hook: drop/corrupt/delay chosen arrival ordinals on one link.
    struct Script {
        link: LinkId,
        seen: u64,
        drop: Vec<u64>,
        corrupt: Vec<u64>,
        delay: Vec<(u64, u64)>,
    }

    impl Script {
        fn new(link: LinkId) -> Self {
            Script {
                link,
                seen: 0,
                drop: vec![],
                corrupt: vec![],
                delay: vec![],
            }
        }
    }

    impl FaultHook for Script {
        fn on_transit(&mut self, link: LinkId, _frame: &Frame, _now: u64, _hop: u64) -> Transit {
            if link != self.link {
                return Transit::Deliver;
            }
            self.seen += 1;
            if self.drop.contains(&self.seen) {
                Transit::Drop
            } else if self.corrupt.contains(&self.seen) {
                Transit::Corrupt
            } else if let Some(&(_, d)) = self.delay.iter().find(|(n, _)| *n == self.seen) {
                Transit::Delay(d)
            } else {
                Transit::Deliver
            }
        }
    }

    #[test]
    fn dropped_frame_frees_its_buffer_slot() {
        let fabric = Fabric::new(
            Topology::single_cluster(2).unwrap(),
            NetConfig::paper_1988(),
        );
        let rx_link = fabric.endpoint_down_link(NodeAddr(1));
        let mut script = Script::new(rx_link);
        script.drop = vec![2];
        let mut net = StandaloneNet::new(fabric).with_faults(Box::new(script));
        for seq in 0..4 {
            net.send_at(
                0,
                Frame::unicast(NodeAddr(0), NodeAddr(1), 0, seq, Payload::Synthetic(64)),
            );
        }
        // run() itself asserts in_flight == 0: the dropped frame released
        // its reservation instead of wedging the store-and-forward buffers.
        net.run();
        let seqs: Vec<u64> = net.delivered.iter().map(|(_, _, f)| f.seq).collect();
        assert_eq!(seqs, vec![0, 2, 3]);
        assert_eq!(net.fabric.stats.frames_dropped, 1);
        assert_eq!(net.fabric.stats.frames_sent, 4);
        assert_eq!(net.fabric.stats.frames_delivered, 3);
    }

    #[test]
    fn corrupted_frame_arrives_flagged() {
        let fabric = Fabric::new(
            Topology::single_cluster(2).unwrap(),
            NetConfig::paper_1988(),
        );
        let rx_link = fabric.endpoint_down_link(NodeAddr(1));
        let mut script = Script::new(rx_link);
        script.corrupt = vec![1];
        let mut net = StandaloneNet::new(fabric).with_faults(Box::new(script));
        for seq in 0..2 {
            net.send_at(
                0,
                Frame::unicast(NodeAddr(0), NodeAddr(1), 0, seq, Payload::Synthetic(8)),
            );
        }
        net.run();
        assert_eq!(net.delivered.len(), 2);
        assert!(net.delivered[0].2.corrupted);
        assert!(!net.delivered[1].2.corrupted);
        assert_eq!(net.fabric.stats.frames_corrupted, 1);
    }

    #[test]
    fn delayed_frame_arrives_late_but_intact() {
        let fabric = Fabric::new(
            Topology::single_cluster(2).unwrap(),
            NetConfig::paper_1988(),
        );
        let rx_link = fabric.endpoint_down_link(NodeAddr(1));
        let mut script = Script::new(rx_link);
        script.delay = vec![(1, 1_000_000)];
        let mut net = StandaloneNet::new(fabric).with_faults(Box::new(script));
        net.send_at(
            0,
            Frame::unicast(NodeAddr(0), NodeAddr(1), 0, 7, Payload::Synthetic(4)),
        );
        net.run();
        assert_eq!(net.delivered.len(), 1);
        // Fault-free transit is 2 * (40*50 + 500); the delay adds 1 ms.
        assert_eq!(net.delivered[0].0, 2 * (40 * 50 + 500) + 1_000_000);
        assert!(!net.delivered[0].2.corrupted);
    }

    #[test]
    fn down_endpoint_loses_traffic_until_restart() {
        let topo = Topology::single_cluster(3).unwrap();
        let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
        let out = net.fabric.set_endpoint_down(0, NodeAddr(2), true);
        net.apply(out);
        assert!(net.fabric.is_down(NodeAddr(2)));
        assert!(!net.fabric.can_send(NodeAddr(2)));
        for seq in 0..3 {
            net.send_at(
                0,
                Frame::unicast(NodeAddr(0), NodeAddr(2), 0, seq, Payload::Synthetic(128)),
            );
        }
        net.run();
        assert!(net.delivered.is_empty());
        assert_eq!(net.fabric.stats.frames_dropped, 3);
        // Restart: the interface is cold but alive again.
        let out = net.fabric.set_endpoint_down(net.now(), NodeAddr(2), false);
        net.apply(out);
        let t = net.now();
        net.send_at(
            t,
            Frame::unicast(NodeAddr(0), NodeAddr(2), 0, 99, Payload::Synthetic(128)),
        );
        net.run();
        assert_eq!(net.delivered.len(), 1);
        assert_eq!(net.delivered[0].2.seq, 99);
    }

    /// Hook that counts down-drops (frames lost to a mid-flight link cut).
    #[derive(Default)]
    struct DownCounter {
        down_drops: u64,
    }

    impl FaultHook for DownCounter {
        fn on_transit(&mut self, _link: LinkId, _frame: &Frame, _now: u64, _hop: u64) -> Transit {
            Transit::Deliver
        }
        fn on_down_drop(&mut self, _link: LinkId) {
            self.down_drops += 1;
        }
    }

    #[test]
    fn link_down_drops_mid_flight_frame() {
        // A frame already serialized onto a link when the link goes down
        // must never be delivered after the down edge.
        let mut f = Fabric::new(
            Topology::single_cluster(2).unwrap(),
            NetConfig::paper_1988(),
        );
        let up = f.endpoint_up_link(NodeAddr(0));
        let out = f
            .try_send(
                0,
                Frame::unicast(NodeAddr(0), NodeAddr(1), 0, 5, Payload::Synthetic(64)),
            )
            .unwrap();
        let cut = f.set_link_down(1, up, true);
        assert!(cut.schedule.is_empty());
        let mut hook = DownCounter::default();
        for (delay, ev) in out.schedule {
            let more = f.handle_with(1 + delay, ev, &mut hook);
            assert!(
                !more
                    .notifies
                    .iter()
                    .any(|n| matches!(n, Notify::RxArrived(_))),
                "nothing may be delivered after the down edge"
            );
        }
        assert_eq!(hook.down_drops, 1);
        assert_eq!(f.stats.frames_dropped, 1);
        assert_eq!(f.rx_depth(NodeAddr(1)), 0);
        assert_eq!(f.in_flight(), 0);
    }

    #[test]
    fn dead_cluster_link_reroutes_traffic() {
        // 4-cluster hypercube: c0-c1-c3 and c0-c2-c3. Node 0 (c0) to node 3
        // (c3) routes via c1 by the two-phase rule; with c0->c1 cut, the
        // frame must arrive via c2 and be counted as rerouted.
        let topo = Topology::incomplete_hypercube(4, 1).unwrap();
        let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
        let l = net.fabric.cluster_link(ClusterId(0), ClusterId(1)).unwrap();
        let out = net.fabric.set_link_down(0, l, true);
        net.apply(out);
        net.send_at(
            0,
            Frame::unicast(NodeAddr(0), NodeAddr(3), 0, 0, Payload::Synthetic(16)),
        );
        net.run();
        assert_eq!(net.delivered.len(), 1);
        assert_eq!(net.delivered[0].1, NodeAddr(3));
        assert!(net.fabric.stats.frames_rerouted > 0);
        assert_eq!(net.fabric.stats.frames_dropped, 0);
    }

    #[test]
    fn unroutable_traffic_drops_instead_of_wedging() {
        // Two clusters, one cable. Cut both directions: traffic between
        // them is dropped (flow-control slots freed), never stuck.
        let topo = Topology::incomplete_hypercube(2, 1).unwrap();
        let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
        let a = net.fabric.cluster_link(ClusterId(0), ClusterId(1)).unwrap();
        let b = net.fabric.cluster_link(ClusterId(1), ClusterId(0)).unwrap();
        for l in [a, b] {
            let out = net.fabric.set_link_down(0, l, true);
            net.apply(out);
        }
        net.send_at(
            0,
            Frame::unicast(NodeAddr(0), NodeAddr(1), 0, 0, Payload::Synthetic(16)),
        );
        // run() asserts in_flight == 0: the unroutable frame freed its slot.
        net.run();
        assert!(net.delivered.is_empty());
        assert!(net.fabric.stats.frames_dropped >= 1);
        // Heal both directions: traffic flows again on baseline routes.
        for l in [a, b] {
            let out = net.fabric.set_link_down(net.now(), l, false);
            net.apply(out);
        }
        let t = net.now();
        net.send_at(
            t,
            Frame::unicast(NodeAddr(0), NodeAddr(1), 0, 1, Payload::Synthetic(16)),
        );
        net.run();
        assert_eq!(net.delivered.len(), 1);
        assert_eq!(net.delivered[0].2.seq, 1);
    }

    #[test]
    fn crash_purges_rx_fifo_without_leaking_in_flight() {
        let topo = Topology::single_cluster(2).unwrap();
        let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
        // Deliver a frame into n1's FIFO by hand: send, run, but don't pop —
        // the StandaloneNet pops instantly, so instead crash mid-flight.
        net.send_at(
            0,
            Frame::unicast(NodeAddr(0), NodeAddr(1), 0, 0, Payload::Synthetic(1024)),
        );
        // Crash n1 at t=1 (during serialization of the first hop).
        net.run_inner();
        assert_eq!(net.delivered.len(), 1, "sanity: fault-free delivery");
        let out = net.fabric.set_endpoint_down(net.now(), NodeAddr(1), true);
        net.apply(out);
        let t = net.now();
        net.send_at(
            t,
            Frame::unicast(NodeAddr(0), NodeAddr(1), 0, 1, Payload::Synthetic(1024)),
        );
        net.run();
        assert_eq!(net.delivered.len(), 1, "frame to dead node is lost");
        assert_eq!(net.fabric.stats.frames_dropped, 1);
        assert_eq!(net.fabric.in_flight(), 0);
    }
}

#[cfg(test)]
mod report_tests {
    use super::*;
    use crate::driver::StandaloneNet;
    use crate::frame::Payload;

    #[test]
    fn link_report_names_and_accounts() {
        let topo = Topology::incomplete_hypercube(2, 2).unwrap();
        let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
        net.send_at(
            0,
            Frame::unicast(NodeAddr(0), NodeAddr(3), 0, 0, Payload::Synthetic(100)),
        );
        net.run();
        let report = net.fabric.link_report();
        // 4 endpoints x 2 links + 2 inter-cluster links.
        assert_eq!(report.len(), net.fabric.n_links());
        assert_eq!(report.len(), 10);
        // The frame crossed clusters: some inter-cluster link was busy.
        let cross_busy = report
            .iter()
            .any(|(_, d, busy, _)| d.contains("c0p0") && d.contains("c1p0") && *busy > 0);
        assert!(cross_busy, "{report:?}");
        // Quiescent: nothing buffered anywhere.
        assert!(report.iter().all(|(_, _, _, buffered)| *buffered == 0));
    }
}
