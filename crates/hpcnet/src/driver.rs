//! A minimal standalone event loop for driving a [`Fabric`] without any
//! operating-system layer: the "software" at every endpoint is an idealized
//! kernel that drains the receive FIFO instantly and retries busy
//! transmitters as soon as `TxReady` fires.
//!
//! Used by hpcnet's own tests, property tests, and micro-examples; the real
//! embedding (VORX) replaces this with simulated kernel software that
//! charges CPU time for every action.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::fabric::{Fabric, FaultHook, NetEvent, Notify, Output};
use crate::frame::{Frame, NodeAddr};

/// Cap on each endpoint's busy-transmitter retry queue. Software that keeps
/// injecting while its port is saturated loses the newest frames past this
/// depth (counted in [`StandaloneNet::waiting_dropped`]) instead of growing
/// the queue without bound.
pub const WAITING_TX_CAP: usize = 256;

enum Action {
    Net(NetEvent),
    Inject(Frame),
    Crash(NodeAddr),
}

struct Entry {
    t: u64,
    seq: u64,
    action: Action,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.t, self.seq) == (other.t, other.seq)
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.t, other.seq).cmp(&(self.t, self.seq)) // min-heap
    }
}

/// Standalone fabric driver. See module docs.
pub struct StandaloneNet {
    /// The fabric under test.
    pub fabric: Fabric,
    /// Frames delivered to endpoint software: `(time_ns, endpoint, frame)`.
    pub delivered: Vec<(u64, NodeAddr, Frame)>,
    now: u64,
    seq: u64,
    queue: BinaryHeap<Entry>,
    /// Same-instant lane: actions scheduled *at* `now` while processing an
    /// event at `now` (zero-delay cascades — rx drains, tx retries). They
    /// fire in FIFO order before any later heap entry, without paying the
    /// O(log n) heap churn. Invariant (as in `desim::sim`): time advances
    /// only on heap pops, so any heap entry with `t == now` predates — and
    /// hence outranks by seq — every lane entry.
    lane: VecDeque<(u64, Action)>,
    waiting_tx: HashMap<NodeAddr, VecDeque<Frame>>,
    /// Frames discarded from `waiting_tx`: newest-first overflow past
    /// [`WAITING_TX_CAP`], plus everything purged when the queue's endpoint
    /// crashed.
    pub waiting_dropped: u64,
    faults: Option<Box<dyn FaultHook>>,
}

impl StandaloneNet {
    /// Wrap a fabric.
    pub fn new(fabric: Fabric) -> Self {
        StandaloneNet {
            fabric,
            delivered: Vec::new(),
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            lane: VecDeque::new(),
            waiting_tx: HashMap::new(),
            waiting_dropped: 0,
            faults: None,
        }
    }

    /// Install a fault hook consulted for every frame arrival.
    pub fn with_faults(mut self, hook: Box<dyn FaultHook>) -> Self {
        self.faults = Some(hook);
        self
    }

    /// Feed a fabric [`Output`] produced outside the loop (e.g. from
    /// [`Fabric::set_endpoint_down`]) into the driver.
    pub fn apply(&mut self, out: Output) {
        self.process(out);
    }

    /// Current time, ns.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedule a crash of `node` at time `t`: the endpoint goes down in the
    /// fabric and every frame its (now dead) transmitter still had queued
    /// for retry is purged into `waiting_dropped` — without the purge, a
    /// crashed sender's retry queue would pin its frames forever.
    pub fn crash_at(&mut self, t: u64, node: NodeAddr) {
        self.push(t, Action::Crash(node));
    }

    fn push(&mut self, t: u64, action: Action) {
        let seq = self.seq;
        self.seq += 1;
        if t == self.now {
            self.lane.push_back((seq, action));
        } else {
            self.queue.push(Entry { t, seq, action });
        }
    }

    /// Ask the endpoint software to inject `frame` at time `t` (busy
    /// transmitters are retried on `TxReady`).
    pub fn send_at(&mut self, t: u64, frame: Frame) {
        self.push(t, Action::Inject(frame));
    }

    /// Run until quiescent. Panics if any frame remains stuck in the fabric.
    pub fn run(&mut self) {
        self.run_inner();
        assert_eq!(
            self.fabric.in_flight(),
            0,
            "frames stuck inside the fabric at quiescence"
        );
        assert!(
            self.waiting_tx.values().all(VecDeque::is_empty),
            "frames never injected"
        );
    }

    /// Run until quiescent without asserting delivery (for tests that
    /// deliberately wedge the fabric).
    pub fn run_inner(&mut self) {
        loop {
            // Lane vs heap: a heap entry wins only when it is also at `now`
            // with a smaller seq (see the `lane` field invariant).
            let use_lane = match (self.lane.front(), self.queue.peek()) {
                (Some(_), None) => true,
                (Some(&(lane_seq, _)), Some(h)) => h.t > self.now || h.seq > lane_seq,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let action = if use_lane {
                self.lane.pop_front().expect("lane front").1
            } else {
                let e = self.queue.pop().expect("peeked");
                debug_assert!(e.t >= self.now);
                self.now = e.t;
                e.action
            };
            let out = match action {
                Action::Net(ev) => match &mut self.faults {
                    Some(h) => self.fabric.handle_with(self.now, ev, h.as_mut()),
                    None => self.fabric.handle(self.now, ev),
                },
                Action::Inject(frame) => {
                    let src = frame.src;
                    if self.fabric.can_send(src) {
                        match self.fabric.try_send(self.now, frame) {
                            Ok(out) => out,
                            Err(e) => panic!("injection failed: {e}"),
                        }
                    } else {
                        // Transmitter busy: queue for retry on TxReady,
                        // shedding the newest frame once the queue is full.
                        let q = self.waiting_tx.entry(src).or_default();
                        if q.len() < WAITING_TX_CAP {
                            q.push_back(frame);
                        } else {
                            self.waiting_dropped += 1;
                        }
                        Output::default()
                    }
                }
                Action::Crash(node) => {
                    if let Some(q) = self.waiting_tx.get_mut(&node) {
                        self.waiting_dropped += q.len() as u64;
                        q.clear();
                    }
                    self.fabric.set_endpoint_down(self.now, node, true)
                }
            };
            self.process(out);
        }
    }

    fn process(&mut self, out: Output) {
        let mut work = vec![out];
        while let Some(out) = work.pop() {
            for (delay, ev) in out.schedule {
                self.push(self.now + delay, Action::Net(ev));
            }
            for n in out.notifies {
                match n {
                    Notify::TxReady(a) => {
                        if let Some(q) = self.waiting_tx.get_mut(&a) {
                            if let Some(frame) = q.pop_front() {
                                match self.fabric.try_send(self.now, frame) {
                                    Ok(o) => work.push(o),
                                    Err(e) => panic!("retry injection failed: {e}"),
                                }
                            }
                        }
                    }
                    Notify::RxArrived(a) => {
                        // Idealized kernel: drain immediately.
                        let (frame, o) = self.fabric.rx_pop(self.now, a);
                        if let Some(f) = frame {
                            self.delivered.push((self.now, a, f));
                        }
                        work.push(o);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetConfig;
    use crate::frame::Payload;
    use crate::topology::Topology;

    fn net(nodes: usize) -> StandaloneNet {
        StandaloneNet::new(Fabric::new(
            Topology::single_cluster(nodes).unwrap(),
            NetConfig::paper_1988(),
        ))
    }

    #[test]
    fn waiting_tx_overflow_sheds_newest_frames() {
        let mut n = net(2);
        // One frame starts serializing; WAITING_TX_CAP queue behind it; the
        // overflow is shed instead of growing the retry queue.
        let extra = 3;
        for i in 0..(1 + WAITING_TX_CAP + extra) {
            n.send_at(
                0,
                Frame::unicast(
                    NodeAddr(0),
                    NodeAddr(1),
                    9,
                    i as u64,
                    Payload::Synthetic(64),
                ),
            );
        }
        n.run();
        assert_eq!(n.waiting_dropped, extra as u64);
        assert_eq!(n.delivered.len(), 1 + WAITING_TX_CAP);
        // The *newest* frames were shed: every survivor seq < cap + 1.
        assert!(n
            .delivered
            .iter()
            .all(|(_, _, f)| f.seq < (1 + WAITING_TX_CAP) as u64));
    }

    #[test]
    fn crash_purges_queued_frames_of_dead_sender() {
        let mut n = net(2);
        // 1000 B payloads serialize in 51.8 us each; five frames queue
        // behind the first, then the sender dies mid-serialization.
        for i in 0..6 {
            n.send_at(
                0,
                Frame::unicast(NodeAddr(0), NodeAddr(1), 9, i, Payload::Synthetic(1000)),
            );
        }
        n.crash_at(10_000, NodeAddr(0));
        n.run();
        assert_eq!(n.waiting_dropped, 5, "queued frames purged at crash");
        // The frame already on the wire still delivers; nothing leaks.
        assert_eq!(n.delivered.len(), 1);
        assert_eq!(n.fabric.in_flight(), 0);
    }
}
