//! # hpcnet — the HPC interconnect
//!
//! An event-driven model of the HPC, the interconnect underlying the
//! HPC/VORX local area multicomputer (PPoPP 1990):
//!
//! * **Clusters** — twelve-port self-routing star networks
//!   ([`topology::Topology`]). Single-cluster systems, arbitrary graphs, and
//!   the paper's incomplete hypercube (up to "more than a thousand nodes")
//!   are all constructible.
//! * **Ports** — independent input and output sections running at
//!   160 Mbit/s ([`config::NetConfig`]).
//! * **Hardware flow control** — a link accepts a frame only when it has
//!   room to buffer the whole frame, so the interconnect *never loses
//!   messages* and software needs no recovery protocol
//!   ([`fabric::Fabric`], §2 of the paper).
//! * **Hardware multicast** — frames are replicated at branch clusters, not
//!   at the source (§4.2).
//!
//! The fabric is a pure state machine with an explicit event interface, so
//! it can be embedded in the `desim`-based VORX simulation, driven by the
//! bundled [`driver::StandaloneNet`], or unit-tested directly.
//!
//! The contrasting previous-generation interconnect (single-bus S/NET with
//! software flow-control recovery) lives in the sibling `snet` crate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod combine;
pub mod config;
pub mod driver;
pub mod fabric;
pub mod frame;
pub mod topology;

pub use config::{NetConfig, PORTS_PER_CLUSTER};
pub use fabric::{
    Fabric, FaultHook, LinkId, NetEvent, NoFaults, Notify, Output, SendError, Stats, Transit,
};
pub use frame::{
    copymeter, Dest, Frame, FrameError, NodeAddr, Payload, HEADER_BYTES, MAX_FRAME, MAX_PAYLOAD,
};
pub use topology::{
    Attachment, ClusterId, PortRef, RoutingMode, Topology, TopologyBuilder, TopologyError,
};
