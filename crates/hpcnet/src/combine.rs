//! In-switch combining: the wire vocabulary of combinable frames.
//!
//! The HPC hardware was designed so multicast could live in the fabric
//! rather than at endpoints (§4.2 of the paper). This module extends that
//! idea one step along the lineage running from the NYU Ultracomputer's
//! fetch-and-add switches to modern in-network collectives: *combinable*
//! frames headed for the same destination merge inside each star coupler,
//! so the root of a reduction receives O(log n) merged frames instead of
//! O(n) individual ones.
//!
//! The fabric stays protocol-agnostic: the embedding software registers one
//! frame *kind* as combinable per group ([`crate::Fabric::comb_register_group`]),
//! and every combinable frame carries a fixed-width operand in the payload
//! layout defined here — `[op: u8][value: u64 BE][count: u32 BE]`, 13 bytes.
//! `count` is the number of original contributions folded into `value`, so
//! the receiving software can tell a partial combine (window expired before
//! the whole subtree arrived) from a complete one and accumulate partials
//! until the group total is reached.
//!
//! The frame `seq` identifies the combining equivalence class: frames with
//! equal `(dst, seq)` merge. The encoding packs `(group, sequence, attempt)`
//! — see [`enc_seq`] — so retransmission *attempts* never merge with stale
//! partials from a previous attempt (the combining analog of the channel
//! layer's dedup discipline: a lost partial is recovered by a fresh attempt
//! epoch, never by re-merging a frame that might already be counted).

use bytes::Bytes;

use crate::frame::Payload;

/// Wire size of a combinable operand payload.
pub const COMB_PAYLOAD_BYTES: u32 = 13;

/// The combining operations the switch ALU implements. All are associative
/// and commutative over `u64`, which is what makes the merged result a pure
/// function of the *set* of contributions, independent of arbitration
/// order — the determinism argument of DESIGN.md §16 rests on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombOp {
    /// Wrapping sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Fetch-and-add: merges exactly like [`CombOp::Sum`]; the software
    /// layer returns the group total. (The Ultracomputer's per-requester
    /// prefix decombination on the way down is not modeled — a documented
    /// simplification.)
    FetchAdd,
}

impl CombOp {
    /// Fold one contribution into an accumulator.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            CombOp::Sum | CombOp::FetchAdd => a.wrapping_add(b),
            CombOp::Min => a.min(b),
            CombOp::Max => a.max(b),
        }
    }

    /// The identity element (`apply(identity(), x) == x`).
    pub fn identity(self) -> u64 {
        match self {
            CombOp::Sum | CombOp::FetchAdd => 0,
            CombOp::Min => u64::MAX,
            CombOp::Max => 0,
        }
    }

    /// Wire code of the operation.
    pub fn code(self) -> u8 {
        match self {
            CombOp::Sum => 0,
            CombOp::Min => 1,
            CombOp::Max => 2,
            CombOp::FetchAdd => 3,
        }
    }

    /// Decode a wire code.
    pub fn from_code(c: u8) -> Option<CombOp> {
        match c {
            0 => Some(CombOp::Sum),
            1 => Some(CombOp::Min),
            2 => Some(CombOp::Max),
            3 => Some(CombOp::FetchAdd),
            _ => None,
        }
    }
}

/// Encode an operand payload. This is the *software* encoder (a member
/// building its contribution), so the 13-byte write is metered like any
/// other payload creation copy.
pub fn pack(op: CombOp, value: u64, count: u32) -> Payload {
    Payload::copy_from(&encode(op, value, count))
}

/// Encode an operand payload inside the switch (a combining-ALU register
/// write, not a software copy — not metered).
pub(crate) fn pack_hw(op: CombOp, value: u64, count: u32) -> Payload {
    Payload::Data(Bytes::copy_from_slice(&encode(op, value, count)))
}

fn encode(op: CombOp, value: u64, count: u32) -> [u8; COMB_PAYLOAD_BYTES as usize] {
    let mut b = [0u8; COMB_PAYLOAD_BYTES as usize];
    b[0] = op.code();
    b[1..9].copy_from_slice(&value.to_be_bytes());
    b[9..13].copy_from_slice(&count.to_be_bytes());
    b
}

/// Decode an operand payload. `None` for anything that is not a well-formed
/// 13-byte operand (synthetic payloads, wrong length, unknown op) — such a
/// frame is simply not combinable and forwards unmerged.
pub fn unpack(p: &Payload) -> Option<(CombOp, u64, u32)> {
    let Payload::Data(b) = p else { return None };
    if b.len() != COMB_PAYLOAD_BYTES as usize {
        return None;
    }
    let op = CombOp::from_code(b[0])?;
    let mut v = [0u8; 8];
    v.copy_from_slice(&b[1..9]);
    let mut c = [0u8; 4];
    c.copy_from_slice(&b[9..13]);
    Some((op, u64::from_be_bytes(v), u32::from_be_bytes(c)))
}

/// Maximum collective group id: the `seq` encoding gives groups 24 bits.
pub const MAX_GROUP: u32 = (1 << 24) - 1;

/// Pack `(group, sequence, attempt)` into a frame `seq`: the combining
/// equivalence class. Group 24 bits, per-group operation sequence 32 bits,
/// retransmission attempt 8 bits.
pub fn enc_seq(group: u32, cseq: u32, attempt: u8) -> u64 {
    assert!(group <= MAX_GROUP, "collective group id exceeds 24 bits");
    (u64::from(group) << 40) | (u64::from(cseq) << 8) | u64::from(attempt)
}

/// The group id of a combinable frame's `seq`.
pub fn seq_group(seq: u64) -> u32 {
    (seq >> 40) as u32
}

/// The per-group operation sequence number of a combinable frame's `seq`.
pub fn seq_cseq(seq: u64) -> u32 {
    (seq >> 8) as u32
}

/// The retransmission attempt of a combinable frame's `seq`.
pub fn seq_attempt(seq: u64) -> u8 {
    seq as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_ops() {
        for op in [CombOp::Sum, CombOp::Min, CombOp::Max, CombOp::FetchAdd] {
            let p = pack(op, 0xDEAD_BEEF_0123_4567, 42);
            assert_eq!(unpack(&p), Some((op, 0xDEAD_BEEF_0123_4567, 42)));
        }
    }

    #[test]
    fn seq_encoding_roundtrips() {
        let s = enc_seq(0xABCDEF, 0xFEED_0123, 0x7F);
        assert_eq!(seq_group(s), 0xABCDEF);
        assert_eq!(seq_cseq(s), 0xFEED_0123);
        assert_eq!(seq_attempt(s), 0x7F);
    }

    #[test]
    fn non_operand_payloads_are_not_combinable() {
        assert_eq!(unpack(&Payload::Synthetic(13)), None);
        assert_eq!(unpack(&Payload::copy_from(b"short")), None);
        let mut bad = encode(CombOp::Sum, 1, 1);
        bad[0] = 9; // unknown op
        assert_eq!(unpack(&Payload::copy_from(&bad)), None);
    }

    #[test]
    fn ops_fold_correctly() {
        assert_eq!(CombOp::Sum.apply(3, 4), 7);
        assert_eq!(CombOp::Min.apply(3, 4), 3);
        assert_eq!(CombOp::Max.apply(3, 4), 4);
        assert_eq!(CombOp::FetchAdd.apply(u64::MAX, 1), 0);
        for op in [CombOp::Sum, CombOp::Min, CombOp::Max, CombOp::FetchAdd] {
            assert_eq!(op.apply(op.identity(), 99), 99);
        }
    }
}
