//! Interconnect topology: clusters, ports, endpoint attachment, and routing.
//!
//! "A twelve node system can be constructed using a single cluster. Larger
//! systems are built by using some port connections for processing nodes and
//! some for connections to other clusters. While the hardware allows
//! connections with arbitrary topologies, we have chosen to connect the
//! clusters in the shape of an incomplete hypercube." (§1)
//!
//! Both options exist here: an arbitrary-graph builder routed by BFS, and the
//! paper's incomplete hypercube routed by the deadlock-free two-phase rule
//! (clear differing bits from high to low, then set differing bits from low
//! to high — every intermediate cluster id stays below the cluster count,
//! which is Katseff's incomplete-hypercube property).

use std::collections::VecDeque;
use std::fmt;

use crate::config::PORTS_PER_CLUSTER;
use crate::frame::NodeAddr;

/// Identifies one HPC cluster (a 12-port self-routing star).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u16);

impl fmt::Debug for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One port of one cluster.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct PortRef {
    /// The cluster.
    pub cluster: ClusterId,
    /// Port index, `0..PORTS_PER_CLUSTER`.
    pub port: u8,
}

/// What a cluster port is wired to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Attachment {
    /// Nothing connected.
    #[default]
    Empty,
    /// An endpoint (processing node or workstation).
    Endpoint(NodeAddr),
    /// A port of another cluster.
    Cluster(PortRef),
}

/// Errors raised while building a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Port index outside `0..12`.
    PortOutOfRange(PortRef),
    /// The port already has an attachment.
    PortInUse(PortRef),
    /// A cluster id that was never added.
    UnknownCluster(ClusterId),
    /// Cluster connected to itself.
    SelfLoop(ClusterId),
    /// Some endpoint cannot reach some other endpoint.
    Unreachable {
        /// Cluster with no route.
        from: ClusterId,
        /// Unreachable destination cluster.
        to: ClusterId,
    },
    /// A hypercube was requested with more endpoints per cluster than free
    /// ports.
    NotEnoughPorts {
        /// Ports needed.
        needed: usize,
        /// Ports available.
        available: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::PortOutOfRange(p) => write!(f, "port out of range: {p:?}"),
            TopologyError::PortInUse(p) => write!(f, "port already in use: {p:?}"),
            TopologyError::UnknownCluster(c) => write!(f, "unknown cluster {c:?}"),
            TopologyError::SelfLoop(c) => write!(f, "cluster {c:?} connected to itself"),
            TopologyError::Unreachable { from, to } => {
                write!(f, "no route from {from:?} to {to:?}")
            }
            TopologyError::NotEnoughPorts { needed, available } => {
                write!(
                    f,
                    "need {needed} ports per cluster, only {available} available"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Incremental topology construction.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    clusters: Vec<[Attachment; PORTS_PER_CLUSTER]>,
    endpoints: Vec<PortRef>, // indexed by NodeAddr
}

impl TopologyBuilder {
    /// Start with no clusters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a cluster; returns its id.
    pub fn add_cluster(&mut self) -> ClusterId {
        let id = ClusterId(self.clusters.len() as u16);
        self.clusters.push(Default::default());
        id
    }

    fn check_port(&self, p: PortRef) -> Result<(), TopologyError> {
        if p.cluster.0 as usize >= self.clusters.len() {
            return Err(TopologyError::UnknownCluster(p.cluster));
        }
        if usize::from(p.port) >= PORTS_PER_CLUSTER {
            return Err(TopologyError::PortOutOfRange(p));
        }
        if self.clusters[p.cluster.0 as usize][usize::from(p.port)] != Attachment::Empty {
            return Err(TopologyError::PortInUse(p));
        }
        Ok(())
    }

    /// Wire two cluster ports together (full duplex).
    pub fn connect(&mut self, a: PortRef, b: PortRef) -> Result<(), TopologyError> {
        if a.cluster == b.cluster {
            return Err(TopologyError::SelfLoop(a.cluster));
        }
        self.check_port(a)?;
        self.check_port(b)?;
        self.clusters[a.cluster.0 as usize][usize::from(a.port)] = Attachment::Cluster(b);
        self.clusters[b.cluster.0 as usize][usize::from(b.port)] = Attachment::Cluster(a);
        Ok(())
    }

    /// Attach a new endpoint to a cluster port; returns its address.
    pub fn attach_endpoint(&mut self, p: PortRef) -> Result<NodeAddr, TopologyError> {
        self.check_port(p)?;
        let addr = NodeAddr(self.endpoints.len() as u16);
        self.clusters[p.cluster.0 as usize][usize::from(p.port)] = Attachment::Endpoint(addr);
        self.endpoints.push(p);
        Ok(addr)
    }

    /// Attach a new endpoint to the first free port of `cluster`.
    pub fn attach_endpoint_auto(&mut self, cluster: ClusterId) -> Result<NodeAddr, TopologyError> {
        if cluster.0 as usize >= self.clusters.len() {
            return Err(TopologyError::UnknownCluster(cluster));
        }
        let free = self.clusters[cluster.0 as usize]
            .iter()
            .position(|a| *a == Attachment::Empty)
            .ok_or(TopologyError::NotEnoughPorts {
                needed: 1,
                available: 0,
            })?;
        self.attach_endpoint(PortRef {
            cluster,
            port: free as u8,
        })
    }

    /// Finalize: compute routing tables (BFS over the cluster graph).
    pub fn build(self) -> Result<Topology, TopologyError> {
        Topology::finish(self.clusters, self.endpoints, RoutingMode::Bfs)
    }
}

/// How inter-cluster routes are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingMode {
    /// Shortest path by breadth-first search (arbitrary topologies).
    Bfs,
    /// Incomplete-hypercube two-phase bit-fixing (clear high→low, then set
    /// low→high). Deterministic, minimal, and every intermediate cluster id
    /// is `< cluster count`.
    IncompleteHypercube,
}

/// A finalized interconnect topology with routing tables.
///
/// Routing is *live*: [`Topology::set_edge_state`] marks inter-cluster edges
/// dead or alive and [`Topology::recompute`] rebuilds the first-hop tables
/// over the surviving edges (BFS, shortest path), bumping a generation
/// counter so the fabric can tell rerouted traffic from baseline traffic.
/// A fault-free topology never recomputes and keeps the tables built by the
/// original routing mode bit-for-bit.
#[derive(Debug, Clone)]
pub struct Topology {
    clusters: Vec<[Attachment; PORTS_PER_CLUSTER]>,
    endpoints: Vec<PortRef>,
    /// `next_port[c][d]` = output port on cluster `c` toward cluster `d`
    /// (`u8::MAX` for c == d, or for d unreachable over surviving edges).
    next_port: Vec<Vec<u8>>,
    /// The fault-free tables from construction; restored verbatim when every
    /// edge heals, and the baseline for "was this frame rerouted?" checks.
    base_next_port: Vec<Vec<u8>>,
    /// `dead_out[c][p]` = the directed inter-cluster edge out of port `p` of
    /// cluster `c` is down.
    dead_out: Vec<[bool; PORTS_PER_CLUSTER]>,
    /// How many times the routing tables were recomputed. 0 = fault-free
    /// baseline.
    generation: u64,
    mode: RoutingMode,
    /// Reusable per-destination BFS distance array for
    /// [`Topology::recompute`]; hoisted so link-churn recomputes do not
    /// allocate on the hot path.
    scratch_dist: Vec<usize>,
    /// Reusable BFS work queue for [`Topology::recompute`].
    scratch_queue: VecDeque<usize>,
}

impl Topology {
    /// A single cluster with `n` endpoints (`n <= 12`).
    pub fn single_cluster(n: usize) -> Result<Topology, TopologyError> {
        if n > PORTS_PER_CLUSTER {
            return Err(TopologyError::NotEnoughPorts {
                needed: n,
                available: PORTS_PER_CLUSTER,
            });
        }
        let mut b = TopologyBuilder::new();
        let c = b.add_cluster();
        for _ in 0..n {
            b.attach_endpoint_auto(c)?;
        }
        b.build()
    }

    /// The paper's incomplete hypercube: `n_clusters` clusters (any count
    /// ≥ 1, not necessarily a power of two), cluster `c` linked to
    /// `c ^ (1<<d)` for every dimension `d` where the partner exists, with
    /// `endpoints_per_cluster` endpoints on each cluster's remaining ports.
    ///
    /// Dimension `d` always uses port `d` on both sides, so with `D`
    /// dimensions the endpoints occupy ports `D..D+endpoints_per_cluster`.
    /// A 1024-node system is `incomplete_hypercube(256, 4)`: 8 dimension
    /// ports + 4 endpoint ports, exactly the paper's example.
    pub fn incomplete_hypercube(
        n_clusters: usize,
        endpoints_per_cluster: usize,
    ) -> Result<Topology, TopologyError> {
        assert!(n_clusters >= 1, "need at least one cluster");
        let dims = dims_for(n_clusters);
        if dims + endpoints_per_cluster > PORTS_PER_CLUSTER {
            return Err(TopologyError::NotEnoughPorts {
                needed: dims + endpoints_per_cluster,
                available: PORTS_PER_CLUSTER,
            });
        }
        let mut b = TopologyBuilder::new();
        for _ in 0..n_clusters {
            b.add_cluster();
        }
        for c in 0..n_clusters {
            for d in 0..dims {
                let peer = c ^ (1 << d);
                if peer < n_clusters && peer > c {
                    b.connect(
                        PortRef {
                            cluster: ClusterId(c as u16),
                            port: d as u8,
                        },
                        PortRef {
                            cluster: ClusterId(peer as u16),
                            port: d as u8,
                        },
                    )?;
                }
            }
        }
        for c in 0..n_clusters {
            for e in 0..endpoints_per_cluster {
                b.attach_endpoint(PortRef {
                    cluster: ClusterId(c as u16),
                    port: (dims + e) as u8,
                })?;
            }
        }
        Topology::finish(b.clusters, b.endpoints, RoutingMode::IncompleteHypercube)
    }

    fn finish(
        clusters: Vec<[Attachment; PORTS_PER_CLUSTER]>,
        endpoints: Vec<PortRef>,
        mode: RoutingMode,
    ) -> Result<Topology, TopologyError> {
        let n = clusters.len();
        let mut next_port = vec![vec![u8::MAX; n]; n];
        match mode {
            RoutingMode::Bfs => {
                // BFS from every destination cluster over reversed edges
                // gives, per source, the first hop of one shortest path.
                for dst in 0..n {
                    let mut dist = vec![usize::MAX; n];
                    dist[dst] = 0;
                    let mut q = VecDeque::from([dst]);
                    while let Some(c) = q.pop_front() {
                        for (port, att) in clusters[c].iter().enumerate() {
                            if let Attachment::Cluster(peer) = att {
                                let p = peer.cluster.0 as usize;
                                if dist[p] == usize::MAX {
                                    dist[p] = dist[c] + 1;
                                    q.push_back(p);
                                }
                                // Record the port on `p` that leads back to
                                // `c` if that is a step toward `dst`.
                                if dist[p] == dist[c] + 1 && next_port[p][dst] == u8::MAX {
                                    next_port[p][dst] = peer.port;
                                }
                                let _ = port;
                            }
                        }
                    }
                    for (src, d) in dist.iter().enumerate() {
                        if src != dst && *d == usize::MAX {
                            return Err(TopologyError::Unreachable {
                                from: ClusterId(src as u16),
                                to: ClusterId(dst as u16),
                            });
                        }
                    }
                }
            }
            RoutingMode::IncompleteHypercube => {
                for (src, row) in next_port.iter_mut().enumerate() {
                    for (dst, port) in row.iter_mut().enumerate() {
                        if src != dst {
                            *port = hypercube_next_dim(src, dst) as u8;
                        }
                    }
                }
            }
        }
        let dead_out = vec![[false; PORTS_PER_CLUSTER]; n];
        Ok(Topology {
            clusters,
            endpoints,
            base_next_port: next_port.clone(),
            next_port,
            dead_out,
            generation: 0,
            mode,
            scratch_dist: vec![usize::MAX; n],
            scratch_queue: VecDeque::with_capacity(n),
        })
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Number of endpoints.
    pub fn n_endpoints(&self) -> usize {
        self.endpoints.len()
    }

    /// All endpoint addresses.
    pub fn endpoints(&self) -> impl Iterator<Item = NodeAddr> + '_ {
        (0..self.endpoints.len()).map(|i| NodeAddr(i as u16))
    }

    /// The routing mode in effect.
    pub fn mode(&self) -> RoutingMode {
        self.mode
    }

    /// The port an endpoint is attached to.
    pub fn endpoint_port(&self, addr: NodeAddr) -> PortRef {
        self.endpoints[addr.0 as usize]
    }

    /// The cluster an endpoint is attached to.
    pub fn cluster_of(&self, addr: NodeAddr) -> ClusterId {
        self.endpoints[addr.0 as usize].cluster
    }

    /// What is attached to a given cluster port.
    pub fn attachment(&self, p: PortRef) -> Attachment {
        self.clusters[p.cluster.0 as usize][usize::from(p.port)]
    }

    /// The output port on `cluster` for a frame addressed to `dst`.
    pub fn route(&self, cluster: ClusterId, dst: NodeAddr) -> u8 {
        let dp = self.endpoints[dst.0 as usize];
        if dp.cluster == cluster {
            dp.port
        } else {
            self.next_port[cluster.0 as usize][dp.cluster.0 as usize]
        }
    }

    /// The fault-free baseline output port on `cluster` toward `dst` (what
    /// [`Topology::route`] answered before any recompute). The fabric
    /// compares against this to count rerouted frames.
    pub fn base_route(&self, cluster: ClusterId, dst: NodeAddr) -> u8 {
        let dp = self.endpoints[dst.0 as usize];
        if dp.cluster == cluster {
            dp.port
        } else {
            self.base_next_port[cluster.0 as usize][dp.cluster.0 as usize]
        }
    }

    /// The sequence of clusters a unicast frame traverses from the cluster
    /// of `src` to the cluster of `dst` (inclusive). Diagnostic helper;
    /// panics if `dst` is unreachable over the surviving edges.
    pub fn cluster_path(&self, src: NodeAddr, dst: NodeAddr) -> Vec<ClusterId> {
        self.try_cluster_path(src, dst)
            .expect("no surviving route between endpoints")
    }

    /// Like [`Topology::cluster_path`], but `None` when no route survives.
    pub fn try_cluster_path(&self, src: NodeAddr, dst: NodeAddr) -> Option<Vec<ClusterId>> {
        let mut here = self.cluster_of(src);
        let goal = self.cluster_of(dst);
        let mut path = vec![here];
        while here != goal {
            let port = self.route(here, dst);
            if port == u8::MAX {
                return None;
            }
            match self.attachment(PortRef {
                cluster: here,
                port,
            }) {
                Attachment::Cluster(peer) => {
                    here = peer.cluster;
                    path.push(here);
                }
                other => panic!("route led to non-cluster attachment {other:?}"),
            }
            assert!(path.len() <= self.clusters.len() + 1, "routing loop");
        }
        Some(path)
    }

    /// Number of cluster-to-cluster hops between two endpoints.
    pub fn hops(&self, src: NodeAddr, dst: NodeAddr) -> usize {
        self.cluster_path(src, dst).len() - 1
    }

    /// Minimum number of directed links on any endpoint-to-endpoint path
    /// that crosses a cluster boundary, over the tables currently in force:
    /// the source endpoint's up-link, the inter-cluster hops, and the
    /// destination endpoint's down-link — so always ≥ 3. `None` when no two
    /// endpoint-hosting clusters are connected (single-cluster topologies:
    /// nothing ever crosses). This is the lookahead extraction for the
    /// sharded engine: multiplied by the minimal per-link frame latency
    /// ([`crate::NetConfig::link_latency_ns`] of a header-only frame) it
    /// lower-bounds the fabric latency of every cross-cluster delivery.
    pub fn min_cross_cluster_links(&self) -> Option<usize> {
        let mut hosts: Vec<usize> = self
            .endpoints
            .iter()
            .map(|p| p.cluster.0 as usize)
            .collect();
        hosts.sort_unstable();
        hosts.dedup();
        let mut best: Option<usize> = None;
        for &a in &hosts {
            for &b in &hosts {
                if a == b {
                    continue;
                }
                if let Some(h) = self.cluster_hops(a, b) {
                    let links = h + 2;
                    best = Some(best.map_or(links, |m| m.min(links)));
                }
            }
        }
        best
    }

    /// Directed link counts between cluster pairs over the tables currently
    /// in force: `counts[a][b]` is the number of links a unicast frame from
    /// an endpoint in cluster `a` crosses to reach an endpoint in cluster
    /// `b` — the source endpoint's up-link, the inter-cluster hops, and the
    /// destination endpoint's down-link (`hops + 2`). Entries are 0 on the
    /// diagonal (intra-cluster frames never cross the boundary), when
    /// either cluster hosts no endpoints, or when the pair is unreachable.
    /// This is the per-pair lookahead structure for the sharded engine:
    /// each entry times the per-link latency of a header-only frame
    /// lower-bounds the fabric latency on that directed cluster pair.
    pub fn cluster_link_counts(&self) -> Vec<Vec<u64>> {
        let nc = self.clusters.len();
        let mut hosted = vec![false; nc];
        for p in &self.endpoints {
            hosted[p.cluster.0 as usize] = true;
        }
        let mut counts = vec![vec![0u64; nc]; nc];
        for a in 0..nc {
            for b in 0..nc {
                if a != b && hosted[a] && hosted[b] {
                    if let Some(h) = self.cluster_hops(a, b) {
                        counts[a][b] = h as u64 + 2;
                    }
                }
            }
        }
        counts
    }

    /// Hop count of the routed path from cluster `from` to cluster `to`
    /// over the tables currently in force; `None` when unreachable.
    fn cluster_hops(&self, from: usize, to: usize) -> Option<usize> {
        let mut here = from;
        let mut hops = 0;
        while here != to {
            let port = self.next_port[here][to];
            if port == u8::MAX {
                return None;
            }
            match self.attachment(PortRef {
                cluster: ClusterId(here as u16),
                port,
            }) {
                Attachment::Cluster(peer) => here = peer.cluster.0 as usize,
                other => panic!("route led to non-cluster attachment {other:?}"),
            }
            hops += 1;
            if hops > self.clusters.len() {
                return None; // defensive loop guard
            }
        }
        Some(hops)
    }

    /// Mark the directed inter-cluster edge out of `p` alive (`up = true`)
    /// or dead. Takes effect at the next [`Topology::recompute`].
    pub fn set_edge_state(&mut self, p: PortRef, up: bool) {
        self.dead_out[p.cluster.0 as usize][usize::from(p.port)] = !up;
    }

    /// True iff any inter-cluster edge is currently marked dead.
    pub fn has_dead_edges(&self) -> bool {
        self.dead_out.iter().any(|ports| ports.iter().any(|d| *d))
    }

    /// How many times the routing tables were recomputed; 0 means the
    /// fault-free baseline tables are in force.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True iff cluster `to` is reachable from cluster `from` over the
    /// surviving edges.
    pub fn reachable(&self, from: ClusterId, to: ClusterId) -> bool {
        from == to || self.next_port[from.0 as usize][to.0 as usize] != u8::MAX
    }

    /// Rebuild the first-hop tables over the surviving edges (shortest path
    /// by BFS, ties broken by lowest port — deterministic) and bump the
    /// generation counter. Unlike construction, unreachable cluster pairs
    /// are tolerated: their entries become `u8::MAX` and the fabric fails
    /// the affected traffic instead of delivering it. When every edge has
    /// healed, the construction-time tables are restored verbatim so a fully
    /// healed fabric routes exactly like a fault-free one.
    pub fn recompute(&mut self) {
        self.generation += 1;
        if !self.has_dead_edges() {
            // Element-wise restore: same result as cloning the baseline
            // tables, without allocating fresh rows on every heal.
            for (row, base) in self.next_port.iter_mut().zip(&self.base_next_port) {
                row.copy_from_slice(base);
            }
            return;
        }
        let n = self.clusters.len();
        for row in self.next_port.iter_mut() {
            row.fill(u8::MAX);
        }
        for dst in 0..n {
            // BFS over the hoisted scratch buffers (see `scratch_dist`):
            // recompute runs on every link-churn event and must not allocate.
            self.scratch_dist.fill(usize::MAX);
            self.scratch_dist[dst] = 0;
            self.scratch_queue.clear();
            self.scratch_queue.push_back(dst);
            while let Some(c) = self.scratch_queue.pop_front() {
                for att in self.clusters[c].iter() {
                    if let Attachment::Cluster(peer) = att {
                        let p = peer.cluster.0 as usize;
                        // A frame taking this step leaves `p` through port
                        // `peer.port`; skip if that directed edge is dead.
                        if self.dead_out[p][usize::from(peer.port)] {
                            continue;
                        }
                        if self.scratch_dist[p] == usize::MAX {
                            self.scratch_dist[p] = self.scratch_dist[c] + 1;
                            self.scratch_queue.push_back(p);
                        }
                        if self.scratch_dist[p] == self.scratch_dist[c] + 1
                            && self.next_port[p][dst] == u8::MAX
                        {
                            self.next_port[p][dst] = peer.port;
                        }
                    }
                }
            }
        }
    }
}

/// Number of hypercube dimensions needed for `n` clusters.
fn dims_for(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Next dimension to correct when routing `src -> dst` in an incomplete
/// hypercube: first clear differing 1-bits of `src` from high to low, then
/// set differing 1-bits of `dst` from low to high. Every intermediate id is
/// `<= max(src, dst)`, hence always a valid cluster.
fn hypercube_next_dim(src: usize, dst: usize) -> usize {
    debug_assert_ne!(src, dst);
    let diff = src ^ dst;
    let clears = diff & src; // bits that are 1 in src, 0 in dst
    if clears != 0 {
        (usize::BITS - 1 - clears.leading_zeros()) as usize
    } else {
        diff.trailing_zeros() as usize // lowest bit to set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cluster_layout() {
        let t = Topology::single_cluster(12).unwrap();
        assert_eq!(t.n_clusters(), 1);
        assert_eq!(t.n_endpoints(), 12);
        assert_eq!(t.hops(NodeAddr(0), NodeAddr(11)), 0);
        assert!(Topology::single_cluster(13).is_err());
    }

    #[test]
    fn min_cross_cluster_links_reflects_topology() {
        // Single cluster: no path ever crosses a boundary.
        assert_eq!(
            Topology::single_cluster(4)
                .unwrap()
                .min_cross_cluster_links(),
            None
        );
        // Hypercube: adjacent clusters exist, so the minimum path is
        // up-link + one inter-cluster hop + down-link.
        assert_eq!(
            Topology::incomplete_hypercube(10, 7)
                .unwrap()
                .min_cross_cluster_links(),
            Some(3)
        );
    }

    #[test]
    fn route_on_same_cluster_is_direct_port() {
        let t = Topology::single_cluster(3).unwrap();
        let c = ClusterId(0);
        assert_eq!(t.route(c, NodeAddr(0)), 0);
        assert_eq!(t.route(c, NodeAddr(2)), 2);
    }

    #[test]
    fn paper_1024_node_configuration() {
        // "A hypercube-based system with 1024 nodes can be built with 256
        // clusters by using 8 of the 12 ports on each cluster for
        // connections to other clusters and the other four for connections
        // to processing nodes." (§1)
        let t = Topology::incomplete_hypercube(256, 4).unwrap();
        assert_eq!(t.n_clusters(), 256);
        assert_eq!(t.n_endpoints(), 1024);
        // Longest route: 8 dimension corrections.
        assert_eq!(t.hops(NodeAddr(0), NodeAddr(1023)), 8);
    }

    #[test]
    fn incomplete_hypercube_routes_stay_valid() {
        // 6 clusters: ids 0..6, 3 dimensions, some links missing.
        let t = Topology::incomplete_hypercube(6, 2).unwrap();
        for s in t.endpoints() {
            for d in t.endpoints() {
                if s != d {
                    let path = t.cluster_path(s, d);
                    for c in &path {
                        assert!((c.0 as usize) < 6, "intermediate {c:?} out of range");
                    }
                    // Minimality: hop count equals hamming distance when it
                    // uses only existing links; never exceeds dims * 2.
                    let sc = t.cluster_of(s).0 as usize;
                    let dc = t.cluster_of(d).0 as usize;
                    assert_eq!(path.len() - 1, (sc ^ dc).count_ones() as usize);
                }
            }
        }
    }

    #[test]
    fn bfs_routing_on_arbitrary_graph() {
        // A line of three clusters: 0 - 1 - 2.
        let mut b = TopologyBuilder::new();
        let c0 = b.add_cluster();
        let c1 = b.add_cluster();
        let c2 = b.add_cluster();
        b.connect(
            PortRef {
                cluster: c0,
                port: 0,
            },
            PortRef {
                cluster: c1,
                port: 0,
            },
        )
        .unwrap();
        b.connect(
            PortRef {
                cluster: c1,
                port: 1,
            },
            PortRef {
                cluster: c2,
                port: 0,
            },
        )
        .unwrap();
        let a = b.attach_endpoint_auto(c0).unwrap();
        let z = b.attach_endpoint_auto(c2).unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.hops(a, z), 2);
        assert_eq!(
            t.cluster_path(a, z),
            vec![ClusterId(0), ClusterId(1), ClusterId(2)]
        );
    }

    #[test]
    fn disconnected_graph_rejected() {
        let mut b = TopologyBuilder::new();
        let c0 = b.add_cluster();
        let c1 = b.add_cluster();
        b.attach_endpoint_auto(c0).unwrap();
        b.attach_endpoint_auto(c1).unwrap();
        assert!(matches!(b.build(), Err(TopologyError::Unreachable { .. })));
    }

    #[test]
    fn builder_detects_misuse() {
        let mut b = TopologyBuilder::new();
        let c0 = b.add_cluster();
        let c1 = b.add_cluster();
        assert!(matches!(
            b.connect(
                PortRef {
                    cluster: c0,
                    port: 0
                },
                PortRef {
                    cluster: c0,
                    port: 1
                }
            ),
            Err(TopologyError::SelfLoop(_))
        ));
        assert!(matches!(
            b.connect(
                PortRef {
                    cluster: c0,
                    port: 12
                },
                PortRef {
                    cluster: c1,
                    port: 0
                }
            ),
            Err(TopologyError::PortOutOfRange(_))
        ));
        b.connect(
            PortRef {
                cluster: c0,
                port: 0,
            },
            PortRef {
                cluster: c1,
                port: 0,
            },
        )
        .unwrap();
        assert!(matches!(
            b.attach_endpoint(PortRef {
                cluster: c0,
                port: 0
            }),
            Err(TopologyError::PortInUse(_))
        ));
        assert!(matches!(
            b.attach_endpoint(PortRef {
                cluster: ClusterId(9),
                port: 0
            }),
            Err(TopologyError::UnknownCluster(_))
        ));
    }

    #[test]
    fn golden_routes_survive_missing_dimensions() {
        // 6 clusters = 3 dimensions with partners 6 and 7 absent: links are
        // dim0 {0-1, 2-3, 4-5}, dim1 {0-2, 1-3}, dim2 {0-4, 1-5}.
        let t = Topology::incomplete_hypercube(6, 1).unwrap();
        // Endpoint i sits on cluster i. Two-phase rule, 5(101) -> 2(010):
        // clear bit 2 (5->1), clear bit 0 (1->0), set bit 1 (0->2).
        assert_eq!(
            t.cluster_path(NodeAddr(5), NodeAddr(2)),
            vec![ClusterId(5), ClusterId(1), ClusterId(0), ClusterId(2)]
        );
        assert_eq!(t.hops(NodeAddr(5), NodeAddr(2)), 3);
        // 4(100) -> 3(011): clear bit 2, set bit 0, set bit 1.
        assert_eq!(
            t.cluster_path(NodeAddr(4), NodeAddr(3)),
            vec![ClusterId(4), ClusterId(0), ClusterId(1), ClusterId(3)]
        );
    }

    #[test]
    fn recompute_reroutes_around_dead_edges() {
        // 4 clusters, full square: 0-1-3 and 0-2-3.
        let mut t = Topology::incomplete_hypercube(4, 1).unwrap();
        assert_eq!(
            t.cluster_path(NodeAddr(0), NodeAddr(3)),
            vec![ClusterId(0), ClusterId(1), ClusterId(3)]
        );
        assert_eq!(t.generation(), 0);
        // Kill the directed edge out of c0 toward c1 (dim 0 uses port 0).
        t.set_edge_state(
            PortRef {
                cluster: ClusterId(0),
                port: 0,
            },
            false,
        );
        assert!(t.has_dead_edges());
        t.recompute();
        assert_eq!(t.generation(), 1);
        assert_eq!(
            t.cluster_path(NodeAddr(0), NodeAddr(3)),
            vec![ClusterId(0), ClusterId(2), ClusterId(3)],
            "route must detour through the surviving diagonal"
        );
        // The reverse direction is untouched (directed edge state).
        assert_eq!(
            t.cluster_path(NodeAddr(3), NodeAddr(0)),
            vec![ClusterId(3), ClusterId(1), ClusterId(0)]
        );
        assert!(t.reachable(ClusterId(0), ClusterId(1)), "via c2-c3-c1");
    }

    #[test]
    fn recompute_tolerates_unreachable_and_heals_to_baseline() {
        // 2 clusters, a single cable.
        let mut t = Topology::incomplete_hypercube(2, 1).unwrap();
        let base_01 = t.route(ClusterId(0), NodeAddr(1));
        t.set_edge_state(
            PortRef {
                cluster: ClusterId(0),
                port: 0,
            },
            false,
        );
        t.recompute();
        assert!(!t.reachable(ClusterId(0), ClusterId(1)));
        assert!(
            t.reachable(ClusterId(1), ClusterId(0)),
            "reverse direction alive"
        );
        assert_eq!(t.route(ClusterId(0), NodeAddr(1)), u8::MAX);
        assert_eq!(t.try_cluster_path(NodeAddr(0), NodeAddr(1)), None);
        // Heal: the construction-time tables come back verbatim.
        t.set_edge_state(
            PortRef {
                cluster: ClusterId(0),
                port: 0,
            },
            true,
        );
        t.recompute();
        assert_eq!(t.generation(), 2);
        assert_eq!(t.route(ClusterId(0), NodeAddr(1)), base_01);
        assert_eq!(t.base_route(ClusterId(0), NodeAddr(1)), base_01);
        assert!(t.reachable(ClusterId(0), ClusterId(1)));
    }

    #[test]
    fn dims_for_counts() {
        assert_eq!(dims_for(1), 0);
        assert_eq!(dims_for(2), 1);
        assert_eq!(dims_for(3), 2);
        assert_eq!(dims_for(4), 2);
        assert_eq!(dims_for(5), 3);
        assert_eq!(dims_for(256), 8);
    }

    #[test]
    fn two_phase_rule_clears_then_sets() {
        // 2(010) -> 5(101): clear bit1 first, then set bit0, then bit2.
        assert_eq!(hypercube_next_dim(0b010, 0b101), 1);
        assert_eq!(hypercube_next_dim(0b000, 0b101), 0);
        assert_eq!(hypercube_next_dim(0b001, 0b101), 2);
    }
}
