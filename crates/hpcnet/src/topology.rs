//! Interconnect topology: clusters, ports, endpoint attachment, and routing.
//!
//! "A twelve node system can be constructed using a single cluster. Larger
//! systems are built by using some port connections for processing nodes and
//! some for connections to other clusters. While the hardware allows
//! connections with arbitrary topologies, we have chosen to connect the
//! clusters in the shape of an incomplete hypercube." (§1)
//!
//! Three generators exist here: an arbitrary-graph builder routed by BFS
//! tables, the paper's flat incomplete hypercube, and the paper's scheme
//! *recursed* — a hierarchy of incomplete hypercubes where each level-0
//! group of clusters is an incomplete hypercube and designated gateway
//! clusters link groups (then groups-of-groups, …) in higher-level
//! incomplete hypercubes. Hypercube levels route by the deadlock-free
//! two-phase rule (clear differing bits from high to low, then set differing
//! bits from low to high — every intermediate id stays below the level size,
//! which is Katseff's incomplete-hypercube property).
//!
//! # Implicit routing and the detour overlay
//!
//! Hypercube topologies do **not** keep dense `next_port` tables: the
//! fault-free output port is computed in O(levels) from cluster coordinates
//! ([`Topology::route`] stays O(1) for the flat paper topology). Link churn
//! installs only the *differences* from that baseline into a hash-map
//! overlay keyed `(cluster, destination)`, so [`Topology::recompute`] after
//! churn costs O(affected destinations), and healing every edge is a single
//! overlay clear — O(1), allocation-free — instead of the old O(n²) table
//! restore. Arbitrary-graph (builder) topologies keep the dense BFS tables;
//! they exist for small irregular worlds where O(n²) is irrelevant.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::config::PORTS_PER_CLUSTER;
use crate::frame::NodeAddr;

/// Identifies one HPC cluster (a 12-port self-routing star).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u32);

impl fmt::Debug for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One port of one cluster.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct PortRef {
    /// The cluster.
    pub cluster: ClusterId,
    /// Port index, `0..PORTS_PER_CLUSTER`.
    pub port: u8,
}

/// What a cluster port is wired to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Attachment {
    /// Nothing connected.
    #[default]
    Empty,
    /// An endpoint (processing node or workstation).
    Endpoint(NodeAddr),
    /// A port of another cluster.
    Cluster(PortRef),
}

/// Errors raised while building a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Port index outside `0..12`.
    PortOutOfRange(PortRef),
    /// The port already has an attachment.
    PortInUse(PortRef),
    /// A cluster id that was never added.
    UnknownCluster(ClusterId),
    /// Cluster connected to itself.
    SelfLoop(ClusterId),
    /// Some endpoint cannot reach some other endpoint.
    Unreachable {
        /// Cluster with no route.
        from: ClusterId,
        /// Unreachable destination cluster.
        to: ClusterId,
    },
    /// A hypercube was requested with more endpoints per cluster (plus
    /// dimension and gateway roles) than free ports.
    NotEnoughPorts {
        /// Ports needed.
        needed: usize,
        /// Ports available.
        available: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::PortOutOfRange(p) => write!(f, "port out of range: {p:?}"),
            TopologyError::PortInUse(p) => write!(f, "port already in use: {p:?}"),
            TopologyError::UnknownCluster(c) => write!(f, "unknown cluster {c:?}"),
            TopologyError::SelfLoop(c) => write!(f, "cluster {c:?} connected to itself"),
            TopologyError::Unreachable { from, to } => {
                write!(f, "no route from {from:?} to {to:?}")
            }
            TopologyError::NotEnoughPorts { needed, available } => {
                write!(
                    f,
                    "need {needed} ports per cluster, only {available} available"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Incremental topology construction.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    clusters: Vec<[Attachment; PORTS_PER_CLUSTER]>,
    endpoints: Vec<PortRef>, // indexed by NodeAddr
}

impl TopologyBuilder {
    /// Start with no clusters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a cluster; returns its id.
    pub fn add_cluster(&mut self) -> ClusterId {
        let id = ClusterId(self.clusters.len() as u32);
        self.clusters.push(Default::default());
        id
    }

    fn check_port(&self, p: PortRef) -> Result<(), TopologyError> {
        if p.cluster.0 as usize >= self.clusters.len() {
            return Err(TopologyError::UnknownCluster(p.cluster));
        }
        if usize::from(p.port) >= PORTS_PER_CLUSTER {
            return Err(TopologyError::PortOutOfRange(p));
        }
        if self.clusters[p.cluster.0 as usize][usize::from(p.port)] != Attachment::Empty {
            return Err(TopologyError::PortInUse(p));
        }
        Ok(())
    }

    /// Wire two cluster ports together (full duplex).
    pub fn connect(&mut self, a: PortRef, b: PortRef) -> Result<(), TopologyError> {
        if a.cluster == b.cluster {
            return Err(TopologyError::SelfLoop(a.cluster));
        }
        self.check_port(a)?;
        self.check_port(b)?;
        self.clusters[a.cluster.0 as usize][usize::from(a.port)] = Attachment::Cluster(b);
        self.clusters[b.cluster.0 as usize][usize::from(b.port)] = Attachment::Cluster(a);
        Ok(())
    }

    /// Attach a new endpoint to a cluster port; returns its address.
    pub fn attach_endpoint(&mut self, p: PortRef) -> Result<NodeAddr, TopologyError> {
        self.check_port(p)?;
        let addr = NodeAddr(self.endpoints.len() as u32);
        self.clusters[p.cluster.0 as usize][usize::from(p.port)] = Attachment::Endpoint(addr);
        self.endpoints.push(p);
        Ok(addr)
    }

    /// Attach a new endpoint to the first free port of `cluster`.
    pub fn attach_endpoint_auto(&mut self, cluster: ClusterId) -> Result<NodeAddr, TopologyError> {
        if cluster.0 as usize >= self.clusters.len() {
            return Err(TopologyError::UnknownCluster(cluster));
        }
        let free = self.clusters[cluster.0 as usize]
            .iter()
            .position(|a| *a == Attachment::Empty)
            .ok_or(TopologyError::NotEnoughPorts {
                needed: 1,
                available: 0,
            })?;
        self.attach_endpoint(PortRef {
            cluster,
            port: free as u8,
        })
    }

    /// Finalize: compute routing tables (BFS over the cluster graph).
    pub fn build(self) -> Result<Topology, TopologyError> {
        Topology::finish_table(self.clusters, self.endpoints)
    }
}

/// How inter-cluster routes are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingMode {
    /// Shortest path by breadth-first search over dense tables (arbitrary
    /// topologies from [`TopologyBuilder`]).
    Bfs,
    /// Incomplete-hypercube two-phase bit-fixing (clear high→low, then set
    /// low→high), computed implicitly from cluster ids. Deterministic,
    /// minimal, and every intermediate cluster id is `< cluster count`.
    IncompleteHypercube,
    /// A hierarchy of incomplete hypercubes (groups of clusters linked by
    /// gateway clusters, recursively). Routes are computed implicitly from
    /// mixed-radix cluster coordinates in O(levels).
    Hierarchical,
}

/// A directed inter-cluster edge: (cluster, output port). Kept sorted so
/// membership tests are binary searches and churn never allocates once the
/// vector has warmed up.
type DeadEdge = (u32, u8);

/// How the routing overlay currently relates to the implicit baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OverlayScope {
    /// No dead edges: every route is the implicit baseline, overlay empty.
    Baseline,
    /// Every dead edge is a level-0 (intra-group) link. The overlay holds
    /// group-local detours keyed by `(cluster, local waypoint target)`;
    /// gateway hops are untouched and guaranteed alive.
    Waypoint,
    /// At least one gateway link is down (or a group lost internal
    /// connectivity). The overlay holds exact per-destination detours keyed
    /// by `(cluster, destination cluster)` for every affected destination,
    /// computed by full reverse BFS — global ground truth.
    Target,
}

/// Implicit-routing state for (possibly hierarchical) incomplete hypercubes.
#[derive(Debug, Clone)]
struct Hier {
    /// Level sizes, innermost first. `levels[0]` clusters form one group
    /// wired as an incomplete hypercube; `levels[1]` groups form a
    /// super-hypercube linked by gateways, and so on. A flat paper topology
    /// is `levels == [n_clusters]`.
    levels: Vec<u32>,
    /// `dims[l] = dims_for(levels[l])`: hypercube dimensions at each level.
    dims: Vec<u32>,
    /// `block[l]` = number of clusters per level-`l` unit = `∏ levels[..l]`.
    /// `block[0] == 1`.
    block: Vec<u32>,
    /// Endpoints per cluster; endpoint `e` of cluster `c` has address
    /// `c * eps + e` and sits on port `dims[0] + e`.
    eps: u32,
    /// `gw[l-1][d]` = the residue `r < block[l]` such that every cluster
    /// `c ≡ r (mod block[l])` is the gateway for super-dimension `d` of
    /// level `l` within its block. Chosen greedily at build time to spread
    /// gateway port load.
    gw: Vec<Vec<u32>>,
    /// Redundant worlds only ([`Topology::hierarchical_hypercube_redundant`]):
    /// `gw_standby[l-1][d]` = a second residue class, distinct from
    /// `gw[l-1][d]`, wired with its own physical copy of every level-`l`
    /// dimension-`d` gateway link. Empty when the world has no standbys.
    gw_standby: Vec<Vec<u32>>,
    /// The residue class currently *routing* each gateway role. Starts as a
    /// copy of `gw`; [`Topology::recompute`] flips a role to its standby when
    /// the primary class loses a gateway link (and back on heal). Always
    /// equals `gw` in non-redundant worlds.
    gw_active: Vec<Vec<u32>>,
    /// Detours installed by [`Topology::recompute`]: only entries that
    /// *differ* from the implicit baseline are present (`u8::MAX` marks an
    /// unreachable pair). Never iterated, so hash order cannot leak into
    /// simulation behavior.
    overlay: HashMap<(u32, u32), u8>,
    /// What the overlay keys currently mean.
    scope: OverlayScope,
}

/// Where the implicit walk from a cluster heads next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// Move within the level-0 group toward this (global) waypoint cluster.
    Local(u32),
    /// We are the gateway: cross the level-`level` link along `dim`.
    Cross {
        /// Hierarchy level of the gateway link.
        level: usize,
        /// Super-dimension being corrected.
        dim: u32,
    },
}

impl Hier {
    /// Mixed-radix digit of cluster `c` at hierarchy level `l`.
    #[inline]
    fn digit(&self, c: u32, l: usize) -> u32 {
        (c / self.block[l]) % self.levels[l]
    }

    /// Number of hierarchy levels.
    fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// The waypoint decision at cluster `x` for a frame bound for cluster
    /// `dst` (`x != dst`): either the next intra-group target to walk toward
    /// or the gateway link to cross. Descends from the highest differing
    /// level: to correct level `l`, first travel (recursively) to the block's
    /// gateway for the needed super-dimension, then cross. The `Local`
    /// target depends only on digits ≥ 1 of `x`, so it is *stable* while the
    /// frame moves within its level-0 group — group-local detours stay
    /// consistent hop by hop.
    fn waypoint(&self, x: u32, dst: u32) -> Step {
        debug_assert_ne!(x, dst);
        let mut goal = dst;
        loop {
            let mut l = self.n_levels() - 1;
            while self.digit(x, l) == self.digit(goal, l) {
                l -= 1;
            }
            if l == 0 {
                return Step::Local(goal);
            }
            let d = hypercube_next_dim(self.digit(x, l), self.digit(goal, l));
            let gwc = x - x % self.block[l] + self.gw_active[l - 1][d as usize];
            if gwc == x {
                return Step::Cross { level: l, dim: d };
            }
            // Head for the gateway; its highest level differing from `x` is
            // strictly below `l`, so this terminates.
            goal = gwc;
        }
    }

    /// Fault-free output port of cluster `x` toward cluster `dst`
    /// (`x != dst`). O(levels²) worst case, O(1) for flat topologies.
    fn base_port(&self, x: u32, dst: u32) -> u8 {
        match self.waypoint(x, dst) {
            Step::Local(t) => hypercube_next_dim(self.digit(x, 0), self.digit(t, 0)) as u8,
            Step::Cross { level, dim } => self.gateway_port(x, level, dim),
        }
    }

    /// The residue classes holding the `(l, dim)` gateway role, in port
    /// allocation order: primary first, then the standby when the world has
    /// one. Port numbering walks roles in exactly this order.
    fn role_classes(&self, l: usize, dim: u32) -> impl Iterator<Item = u32> + '_ {
        std::iter::once(self.gw[l - 1][dim as usize])
            .chain(self.gw_standby.get(l - 1).map(|row| row[dim as usize]))
    }

    /// The port cluster `c` uses for its level-`level`, dimension-`dim`
    /// gateway link. Gateway ports are allocated after the dimension and
    /// endpoint ports in `(level, dim, class)` order of the roles `c` holds;
    /// a role reserves its port even when the partner digit does not exist
    /// (keeps port numbering identical across a residue class). Within a
    /// role, `c` belongs to at most one class (primary and standby residues
    /// are distinct), so the match is unambiguous.
    fn gateway_port(&self, c: u32, level: usize, dim: u32) -> u8 {
        let mut port = self.dims[0] + self.eps;
        for l in 1..self.n_levels() {
            for d in 0..self.dims[l] {
                for r in self.role_classes(l, d) {
                    if c % self.block[l] == r {
                        if l == level && d == dim {
                            return port as u8;
                        }
                        port += 1;
                    }
                }
            }
        }
        unreachable!("cluster {c} holds no gateway role ({level},{dim})")
    }

    /// The gateway role owning port `p` on cluster `c`, as
    /// `(level, dim, class residue)` — `None` for dimension and endpoint
    /// ports. The inverse of [`Hier::gateway_port`]'s allocation walk.
    fn port_role(&self, c: u32, p: u8) -> Option<(usize, u32, u32)> {
        if u32::from(p) < self.dims[0] + self.eps {
            return None;
        }
        let mut port = self.dims[0] + self.eps;
        for l in 1..self.n_levels() {
            for d in 0..self.dims[l] {
                for r in self.role_classes(l, d) {
                    if c % self.block[l] == r {
                        if port == u32::from(p) {
                            return Some((l, d, r));
                        }
                        port += 1;
                    }
                }
            }
        }
        None
    }
}

/// Dense routing tables (arbitrary builder graphs) or implicit hierarchical
/// routing with a sparse detour overlay (hypercube generators).
#[derive(Debug, Clone)]
enum Repr {
    /// `next_port[c][d]` = output port on cluster `c` toward cluster `d`
    /// (`u8::MAX` for c == d, or for d unreachable over surviving edges),
    /// plus the fault-free baseline restored verbatim on heal.
    Table {
        /// Live tables (recomputed on churn).
        next_port: Vec<Vec<u8>>,
        /// The fault-free tables from construction.
        base_next_port: Vec<Vec<u8>>,
    },
    /// Implicit routing from cluster coordinates plus the churn overlay.
    Hier(Hier),
}

/// Reusable buffers for recompute/repair so link churn never allocates on
/// the hot path once warmed up.
#[derive(Debug, Clone)]
struct Scratch {
    dist: Vec<usize>,
    queue: VecDeque<usize>,
    ports: Vec<u8>,
    targets: Vec<u32>,
    groups: Vec<u32>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            dist: vec![usize::MAX; n],
            queue: VecDeque::with_capacity(n),
            ports: vec![u8::MAX; n],
            targets: Vec::with_capacity(n),
            groups: Vec::with_capacity(n.min(1024)),
        }
    }
}

/// A finalized interconnect topology.
///
/// Routing is *live*: [`Topology::set_edge_state`] marks inter-cluster edges
/// dead or alive and [`Topology::recompute`] repairs routing over the
/// surviving edges, bumping a generation counter so the fabric can tell
/// rerouted traffic from baseline traffic. A fault-free topology never
/// recomputes and keeps routing exactly as built.
#[derive(Debug, Clone)]
pub struct Topology {
    clusters: Vec<[Attachment; PORTS_PER_CLUSTER]>,
    endpoints: Vec<PortRef>,
    repr: Repr,
    /// Sorted directed dead edges `(cluster, out port)`.
    dead: Vec<DeadEdge>,
    /// How many times routing was recomputed. 0 = fault-free baseline.
    generation: u64,
    mode: RoutingMode,
    scratch: Scratch,
}

impl Topology {
    /// A single cluster with `n` endpoints (`n <= 12`).
    pub fn single_cluster(n: usize) -> Result<Topology, TopologyError> {
        if n > PORTS_PER_CLUSTER {
            return Err(TopologyError::NotEnoughPorts {
                needed: n,
                available: PORTS_PER_CLUSTER,
            });
        }
        let mut b = TopologyBuilder::new();
        let c = b.add_cluster();
        for _ in 0..n {
            b.attach_endpoint_auto(c)?;
        }
        b.build()
    }

    /// The paper's incomplete hypercube: `n_clusters` clusters (any count
    /// ≥ 1, not necessarily a power of two), cluster `c` linked to
    /// `c ^ (1<<d)` for every dimension `d` where the partner exists, with
    /// `endpoints_per_cluster` endpoints on each cluster's remaining ports.
    ///
    /// Dimension `d` always uses port `d` on both sides, so with `D`
    /// dimensions the endpoints occupy ports `D..D+endpoints_per_cluster`.
    /// A 1024-node system is `incomplete_hypercube(256, 4)`: 8 dimension
    /// ports + 4 endpoint ports, exactly the paper's example. Equivalent to
    /// [`Topology::hierarchical_hypercube`] with a single level.
    pub fn incomplete_hypercube(
        n_clusters: usize,
        endpoints_per_cluster: usize,
    ) -> Result<Topology, TopologyError> {
        Topology::hierarchical_hypercube(&[n_clusters], endpoints_per_cluster)
    }

    /// The paper's scheme recursed: `levels[0]` clusters form a group wired
    /// as an incomplete hypercube, `levels[1]` groups form a super-hypercube
    /// whose links run between designated *gateway* clusters (one residue
    /// class per super-dimension, chosen greedily to spread port load), and
    /// so on for higher levels. Every cluster hosts
    /// `endpoints_per_cluster` endpoints; endpoint `e` of cluster `c` is
    /// address `c * eps + e`.
    ///
    /// With a single level this is exactly [`Topology::incomplete_hypercube`]
    /// — same wiring, same port layout, same link ids. Multi-level
    /// hierarchies require every level size ≥ 2 and fully populated levels.
    pub fn hierarchical_hypercube(
        levels: &[usize],
        endpoints_per_cluster: usize,
    ) -> Result<Topology, TopologyError> {
        Topology::hier_impl(levels, endpoints_per_cluster, false)
    }

    /// [`Topology::hierarchical_hypercube`] with *redundant gateways*: every
    /// gateway role gets a second residue class (the standby), wired with
    /// its own physical copy of each gateway link. When the primary class
    /// loses a gateway link, [`Topology::recompute`] re-wires the whole role
    /// onto the standby class — an O(1) deterministic failover with no
    /// overlay entries — and restores the primary on heal. Costs one extra
    /// port per standby role held, checked against the port budget.
    pub fn hierarchical_hypercube_redundant(
        levels: &[usize],
        endpoints_per_cluster: usize,
    ) -> Result<Topology, TopologyError> {
        Topology::hier_impl(levels, endpoints_per_cluster, true)
    }

    fn hier_impl(
        levels: &[usize],
        endpoints_per_cluster: usize,
        redundant: bool,
    ) -> Result<Topology, TopologyError> {
        assert!(!levels.is_empty(), "need at least one hierarchy level");
        assert!(levels[0] >= 1, "need at least one cluster");
        if levels.len() > 1 {
            assert!(
                levels.iter().all(|&l| l >= 2),
                "multi-level hierarchies need every level size >= 2"
            );
        }
        let n_u64: u64 = levels.iter().map(|&l| l as u64).product();
        let eps = endpoints_per_cluster;
        assert!(
            n_u64.saturating_mul(eps.max(1) as u64) <= u32::MAX as u64,
            "cluster/endpoint count exceeds the u32 address space"
        );
        let n = n_u64 as usize;
        let k = levels.len();
        let levels_u: Vec<u32> = levels.iter().map(|&l| l as u32).collect();
        let dims: Vec<u32> = levels.iter().map(|&l| dims_for(l) as u32).collect();
        let mut block: Vec<u32> = Vec::with_capacity(k);
        let mut acc = 1u32;
        for &l in &levels_u {
            block.push(acc);
            acc = acc.saturating_mul(l);
        }
        let dims0 = dims[0] as usize;

        // Greedy gateway selection: for each (level, super-dim) role pick
        // the residue class (mod block[l]) whose most-loaded member holds
        // the fewest roles so far; ties break to the lowest residue.
        // Deterministic, and keeps the per-cluster gateway port count near
        // the unavoidable ceil(total roles / block) floor.
        let mut gw: Vec<Vec<u32>> = Vec::with_capacity(k.saturating_sub(1));
        let mut gw_standby: Vec<Vec<u32>> = Vec::new();
        let mut load = vec![0u32; n];
        // Pick the least-loaded residue class (mod b), excluding `exclude`.
        let pick = |load: &mut [u32], b: u32, exclude: Option<u32>| -> u32 {
            let mut best_r = 0u32;
            let mut best_load = u32::MAX;
            for r in 0..b {
                if exclude == Some(r) {
                    continue;
                }
                let mut worst = 0u32;
                let mut c = r as usize;
                while c < n {
                    worst = worst.max(load[c]);
                    c += b as usize;
                }
                if worst < best_load {
                    best_load = worst;
                    best_r = r;
                }
            }
            let mut c = best_r as usize;
            while c < n {
                load[c] += 1;
                c += b as usize;
            }
            best_r
        };
        for l in 1..k {
            let b = block[l];
            let mut row = Vec::with_capacity(dims[l] as usize);
            let mut standby_row = Vec::with_capacity(dims[l] as usize);
            for _d in 0..dims[l] {
                let r = pick(&mut load, b, None);
                row.push(r);
                if redundant {
                    // The standby must be a *different* residue class, so a
                    // primary-class fault can never take both copies down.
                    standby_row.push(pick(&mut load, b, Some(r)));
                }
            }
            gw.push(row);
            if redundant {
                gw_standby.push(standby_row);
            }
        }
        let max_load = load.iter().copied().max().unwrap_or(0) as usize;
        if dims0 + eps + max_load > PORTS_PER_CLUSTER {
            return Err(TopologyError::NotEnoughPorts {
                needed: dims0 + eps + max_load,
                available: PORTS_PER_CLUSTER,
            });
        }

        let hier = Hier {
            levels: levels_u.clone(),
            dims: dims.clone(),
            block: block.clone(),
            eps: eps as u32,
            gw: gw.clone(),
            gw_standby: gw_standby.clone(),
            gw_active: gw.clone(),
            overlay: HashMap::new(),
            scope: OverlayScope::Baseline,
        };

        // Wire it. Level-0 links use port d ↔ port d within each group —
        // identical layout to the flat generator, so fabric link ids are
        // stable across the flat/hierarchical representations.
        let mut clusters = vec![[Attachment::Empty; PORTS_PER_CLUSTER]; n];
        let g = levels_u[0] as usize;
        for (c, ports) in clusters.iter_mut().enumerate() {
            let a = c % g;
            for (d, slot) in ports.iter_mut().enumerate().take(dims0) {
                let peer_a = a ^ (1 << d);
                if peer_a < g {
                    *slot = Attachment::Cluster(PortRef {
                        cluster: ClusterId((c - a + peer_a) as u32),
                        port: d as u8,
                    });
                }
            }
        }
        let mut endpoints = Vec::with_capacity(n * eps);
        for (c, ports) in clusters.iter_mut().enumerate() {
            for e in 0..eps {
                let addr = NodeAddr((c * eps + e) as u32);
                let port = (dims0 + e) as u8;
                ports[usize::from(port)] = Attachment::Endpoint(addr);
                endpoints.push(PortRef {
                    cluster: ClusterId(c as u32),
                    port,
                });
            }
        }
        // Gateway links, in (level, dim, class) role order — primary then
        // standby, matching `Hier::gateway_port`'s allocation walk. Every
        // member of a residue class consumes one port per role (even when
        // its partner digit is absent), which keeps port numbers identical
        // across the class — both ends of a link compute the same port.
        let mut next_gw_port = vec![(dims0 + eps) as u8; n];
        for l in 1..k {
            for d in 0..dims[l] {
                for r in hier.role_classes(l, d) {
                    let mut c = r as usize;
                    while c < n {
                        let port = next_gw_port[c];
                        next_gw_port[c] += 1;
                        let a = hier.digit(c as u32, l);
                        let bdig = a ^ (1 << d);
                        if bdig < levels_u[l] && bdig > a {
                            let partner = c + ((bdig - a) * block[l]) as usize;
                            debug_assert_eq!(clusters[c][usize::from(port)], Attachment::Empty);
                            debug_assert_eq!(
                                clusters[partner][usize::from(port)],
                                Attachment::Empty
                            );
                            clusters[c][usize::from(port)] = Attachment::Cluster(PortRef {
                                cluster: ClusterId(partner as u32),
                                port,
                            });
                            clusters[partner][usize::from(port)] = Attachment::Cluster(PortRef {
                                cluster: ClusterId(c as u32),
                                port,
                            });
                        }
                        c += block[l] as usize;
                    }
                }
            }
        }

        let mode = if k == 1 {
            RoutingMode::IncompleteHypercube
        } else {
            RoutingMode::Hierarchical
        };
        Ok(Topology {
            scratch: Scratch::new(n),
            clusters,
            endpoints,
            repr: Repr::Hier(hier),
            dead: Vec::new(),
            generation: 0,
            mode,
        })
    }

    /// Finalize a builder graph: dense BFS tables.
    fn finish_table(
        clusters: Vec<[Attachment; PORTS_PER_CLUSTER]>,
        endpoints: Vec<PortRef>,
    ) -> Result<Topology, TopologyError> {
        let n = clusters.len();
        let mut next_port = vec![vec![u8::MAX; n]; n];
        // BFS from every destination cluster over reversed edges gives, per
        // source, the first hop of one shortest path.
        for dst in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[dst] = 0;
            let mut q = VecDeque::from([dst]);
            while let Some(c) = q.pop_front() {
                for att in clusters[c].iter() {
                    if let Attachment::Cluster(peer) = att {
                        let p = peer.cluster.0 as usize;
                        if dist[p] == usize::MAX {
                            dist[p] = dist[c] + 1;
                            q.push_back(p);
                        }
                        // Record the port on `p` that leads back to `c` if
                        // that is a step toward `dst`.
                        if dist[p] == dist[c] + 1 && next_port[p][dst] == u8::MAX {
                            next_port[p][dst] = peer.port;
                        }
                    }
                }
            }
            for (src, d) in dist.iter().enumerate() {
                if src != dst && *d == usize::MAX {
                    return Err(TopologyError::Unreachable {
                        from: ClusterId(src as u32),
                        to: ClusterId(dst as u32),
                    });
                }
            }
        }
        Ok(Topology {
            scratch: Scratch::new(n),
            clusters,
            endpoints,
            repr: Repr::Table {
                base_next_port: next_port.clone(),
                next_port,
            },
            dead: Vec::new(),
            generation: 0,
            mode: RoutingMode::Bfs,
        })
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Number of endpoints.
    pub fn n_endpoints(&self) -> usize {
        self.endpoints.len()
    }

    /// All endpoint addresses.
    pub fn endpoints(&self) -> impl Iterator<Item = NodeAddr> + '_ {
        (0..self.endpoints.len()).map(|i| NodeAddr(i as u32))
    }

    /// The routing mode in effect.
    pub fn mode(&self) -> RoutingMode {
        self.mode
    }

    /// Level sizes (innermost first) of a hierarchical-hypercube topology;
    /// `None` for table-routed builder graphs. Flat paper topologies report
    /// one level.
    pub fn hier_levels(&self) -> Option<&[u32]> {
        match &self.repr {
            Repr::Hier(h) => Some(&h.levels),
            Repr::Table { .. } => None,
        }
    }

    /// Number of detour entries currently overlaid on the implicit routing
    /// baseline. 0 for fault-free hierarchies and for table-routed graphs
    /// (which patch dense tables instead).
    pub fn overlay_len(&self) -> usize {
        match &self.repr {
            Repr::Hier(h) => h.overlay.len(),
            Repr::Table { .. } => 0,
        }
    }

    /// The port an endpoint is attached to.
    pub fn endpoint_port(&self, addr: NodeAddr) -> PortRef {
        self.endpoints[addr.0 as usize]
    }

    /// The cluster an endpoint is attached to.
    pub fn cluster_of(&self, addr: NodeAddr) -> ClusterId {
        self.endpoints[addr.0 as usize].cluster
    }

    /// What is attached to a given cluster port.
    pub fn attachment(&self, p: PortRef) -> Attachment {
        self.clusters[p.cluster.0 as usize][usize::from(p.port)]
    }

    /// Output port on cluster `from` toward cluster `to` over the routing
    /// currently in force (`u8::MAX` for `from == to` or unreachable).
    fn next_port_of(&self, from: u32, to: u32) -> u8 {
        if from == to {
            return u8::MAX;
        }
        match &self.repr {
            Repr::Table { next_port, .. } => next_port[from as usize][to as usize],
            Repr::Hier(h) => match h.scope {
                OverlayScope::Baseline => h.base_port(from, to),
                OverlayScope::Target => h
                    .overlay
                    .get(&(from, to))
                    .copied()
                    .unwrap_or_else(|| h.base_port(from, to)),
                OverlayScope::Waypoint => match h.waypoint(from, to) {
                    // Gateway links are alive in this scope by definition.
                    Step::Cross { level, dim } => h.gateway_port(from, level, dim),
                    Step::Local(t) => h.overlay.get(&(from, t)).copied().unwrap_or_else(|| {
                        hypercube_next_dim(h.digit(from, 0), h.digit(t, 0)) as u8
                    }),
                },
            },
        }
    }

    /// Fault-free baseline output port on cluster `from` toward `to`.
    fn base_port_of(&self, from: u32, to: u32) -> u8 {
        if from == to {
            return u8::MAX;
        }
        match &self.repr {
            Repr::Table { base_next_port, .. } => base_next_port[from as usize][to as usize],
            Repr::Hier(h) => h.base_port(from, to),
        }
    }

    /// The output port on `cluster` for a frame addressed to `dst`.
    pub fn route(&self, cluster: ClusterId, dst: NodeAddr) -> u8 {
        let dp = self.endpoints[dst.0 as usize];
        if dp.cluster == cluster {
            dp.port
        } else {
            self.next_port_of(cluster.0, dp.cluster.0)
        }
    }

    /// The fault-free baseline output port on `cluster` toward `dst` (what
    /// [`Topology::route`] answered before any recompute). The fabric
    /// compares against this to count rerouted frames.
    pub fn base_route(&self, cluster: ClusterId, dst: NodeAddr) -> u8 {
        let dp = self.endpoints[dst.0 as usize];
        if dp.cluster == cluster {
            dp.port
        } else {
            self.base_port_of(cluster.0, dp.cluster.0)
        }
    }

    /// The sequence of clusters a unicast frame traverses from the cluster
    /// of `src` to the cluster of `dst` (inclusive). Diagnostic helper;
    /// panics if `dst` is unreachable over the surviving edges.
    pub fn cluster_path(&self, src: NodeAddr, dst: NodeAddr) -> Vec<ClusterId> {
        self.try_cluster_path(src, dst)
            .expect("no surviving route between endpoints")
    }

    /// Like [`Topology::cluster_path`], but `None` when no route survives.
    pub fn try_cluster_path(&self, src: NodeAddr, dst: NodeAddr) -> Option<Vec<ClusterId>> {
        let mut path = Vec::new();
        self.cluster_path_into(src, dst, &mut path).then_some(path)
    }

    /// Write the cluster path from `src` to `dst` into `path` (cleared
    /// first), returning `false` when no route survives. The allocation-free
    /// variant of [`Topology::cluster_path`] for per-frame hot paths: with a
    /// reused buffer, steady state performs zero allocations.
    pub fn cluster_path_into(
        &self,
        src: NodeAddr,
        dst: NodeAddr,
        path: &mut Vec<ClusterId>,
    ) -> bool {
        path.clear();
        let mut here = self.cluster_of(src);
        let goal = self.cluster_of(dst);
        path.push(here);
        while here != goal {
            let port = self.route(here, dst);
            if port == u8::MAX {
                return false;
            }
            match self.attachment(PortRef {
                cluster: here,
                port,
            }) {
                Attachment::Cluster(peer) => {
                    here = peer.cluster;
                    path.push(here);
                }
                other => panic!("route led to non-cluster attachment {other:?}"),
            }
            assert!(path.len() <= self.clusters.len() + 1, "routing loop");
        }
        true
    }

    /// Number of cluster-to-cluster hops between two endpoints.
    pub fn hops(&self, src: NodeAddr, dst: NodeAddr) -> usize {
        self.cluster_path(src, dst).len() - 1
    }

    /// Minimum number of directed links on any endpoint-to-endpoint path
    /// that crosses a cluster boundary: the source endpoint's up-link, the
    /// inter-cluster hops, and the destination endpoint's down-link — so
    /// always ≥ 3. `None` when no two endpoint-hosting clusters are
    /// connected (single-cluster topologies: nothing ever crosses). This is
    /// the lookahead extraction for the sharded engine: multiplied by the
    /// minimal per-link frame latency ([`crate::NetConfig::link_latency_ns`]
    /// of a header-only frame) it lower-bounds the fabric latency of every
    /// cross-cluster delivery — a static bound that churn can only increase,
    /// never undercut.
    pub fn min_cross_cluster_links(&self) -> Option<usize> {
        match &self.repr {
            // Hypercube generators always give every cluster endpoints and
            // an adjacent in-group neighbor: the minimum is exactly 3.
            Repr::Hier(h) => {
                if self.clusters.len() >= 2 && h.eps > 0 {
                    Some(3)
                } else {
                    None
                }
            }
            Repr::Table { .. } => {
                let mut hosts: Vec<usize> = self
                    .endpoints
                    .iter()
                    .map(|p| p.cluster.0 as usize)
                    .collect();
                hosts.sort_unstable();
                hosts.dedup();
                let mut best: Option<usize> = None;
                for &a in &hosts {
                    for &b in &hosts {
                        if a == b {
                            continue;
                        }
                        if let Some(h) = self.cluster_hops(a, b) {
                            let links = h + 2;
                            best = Some(best.map_or(links, |m| m.min(links)));
                        }
                    }
                }
                best
            }
        }
    }

    /// Directed link counts between cluster pairs over the routing currently
    /// in force: `counts[a][b]` is the number of links a unicast frame from
    /// an endpoint in cluster `a` crosses to reach an endpoint in cluster
    /// `b` — the source endpoint's up-link, the inter-cluster hops, and the
    /// destination endpoint's down-link (`hops + 2`). Entries are 0 on the
    /// diagonal (intra-cluster frames never cross the boundary), when
    /// either cluster hosts no endpoints, or when the pair is unreachable.
    /// O(clusters² · path): intended for small worlds where the sharded
    /// engine keeps a per-pair lookahead matrix — large hierarchical worlds
    /// use grouped shards with a uniform bound instead.
    pub fn cluster_link_counts(&self) -> Vec<Vec<u64>> {
        let nc = self.clusters.len();
        let mut hosted = vec![false; nc];
        for p in &self.endpoints {
            hosted[p.cluster.0 as usize] = true;
        }
        let mut counts = vec![vec![0u64; nc]; nc];
        for a in 0..nc {
            for b in 0..nc {
                if a != b && hosted[a] && hosted[b] {
                    if let Some(h) = self.cluster_hops(a, b) {
                        counts[a][b] = h as u64 + 2;
                    }
                }
            }
        }
        counts
    }

    /// Number of directed links a unicast frame crosses between endpoints
    /// hosted on clusters `a` and `b` under *fault-free baseline* routing:
    /// up-link + baseline inter-cluster hops + down-link; 0 when `a == b`.
    /// Non-allocating walk — the sharded bridge calls this per cross-shard
    /// frame instead of carrying an O(clusters²) matrix.
    pub fn baseline_cluster_links(&self, a: ClusterId, b: ClusterId) -> u64 {
        if a == b {
            return 0;
        }
        let mut here = a.0;
        let mut hops = 0u64;
        while here != b.0 {
            let port = self.base_port_of(here, b.0);
            debug_assert_ne!(port, u8::MAX, "baseline routing is fully connected");
            match self.attachment(PortRef {
                cluster: ClusterId(here),
                port,
            }) {
                Attachment::Cluster(peer) => here = peer.cluster.0,
                other => panic!("route led to non-cluster attachment {other:?}"),
            }
            hops += 1;
            assert!(
                hops as usize <= self.clusters.len(),
                "baseline routing loop"
            );
        }
        hops + 2
    }

    /// Visit every consecutive cluster pair `(from, to)` on the fault-free
    /// baseline route from `a` to `b`, in path order — the same walk
    /// [`Topology::baseline_cluster_links`] counts. No-op when `a == b`.
    /// The sharded bridge uses this to charge per-cable gray-degradation
    /// latency without materializing the path.
    pub fn baseline_cluster_pairs(
        &self,
        a: ClusterId,
        b: ClusterId,
        mut f: impl FnMut(ClusterId, ClusterId),
    ) {
        let mut here = a.0;
        let mut hops = 0usize;
        while here != b.0 {
            let port = self.base_port_of(here, b.0);
            debug_assert_ne!(port, u8::MAX, "baseline routing is fully connected");
            match self.attachment(PortRef {
                cluster: ClusterId(here),
                port,
            }) {
                Attachment::Cluster(peer) => {
                    f(ClusterId(here), peer.cluster);
                    here = peer.cluster.0;
                }
                other => panic!("route led to non-cluster attachment {other:?}"),
            }
            hops += 1;
            assert!(hops <= self.clusters.len(), "baseline routing loop");
        }
    }

    /// Hop count of the routed path from cluster `from` to cluster `to`
    /// over the routing currently in force; `None` when unreachable.
    fn cluster_hops(&self, from: usize, to: usize) -> Option<usize> {
        let mut here = from as u32;
        let mut hops = 0;
        while here != to as u32 {
            let port = self.next_port_of(here, to as u32);
            if port == u8::MAX {
                return None;
            }
            match self.attachment(PortRef {
                cluster: ClusterId(here),
                port,
            }) {
                Attachment::Cluster(peer) => here = peer.cluster.0,
                other => panic!("route led to non-cluster attachment {other:?}"),
            }
            hops += 1;
            if hops > self.clusters.len() {
                return None; // defensive loop guard
            }
        }
        Some(hops)
    }

    /// Mark the directed inter-cluster edge out of `p` alive (`up = true`)
    /// or dead. Takes effect at the next [`Topology::recompute`].
    pub fn set_edge_state(&mut self, p: PortRef, up: bool) {
        let key = (p.cluster.0, p.port);
        match self.dead.binary_search(&key) {
            Ok(i) => {
                if up {
                    self.dead.remove(i);
                }
            }
            Err(i) => {
                if !up {
                    self.dead.insert(i, key);
                }
            }
        }
    }

    /// True iff any inter-cluster edge is currently marked dead.
    pub fn has_dead_edges(&self) -> bool {
        !self.dead.is_empty()
    }

    /// How many times routing was recomputed; 0 means the fault-free
    /// baseline is in force.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True iff cluster `to` is reachable from cluster `from` over the
    /// surviving edges.
    pub fn reachable(&self, from: ClusterId, to: ClusterId) -> bool {
        if from == to {
            return true;
        }
        match &self.repr {
            Repr::Table { next_port, .. } => next_port[from.0 as usize][to.0 as usize] != u8::MAX,
            Repr::Hier(h) => {
                if h.scope == OverlayScope::Baseline {
                    return true; // generators build connected graphs
                }
                self.cluster_hops(from.0 as usize, to.0 as usize).is_some()
            }
        }
    }

    /// Repair routing over the surviving edges and bump the generation
    /// counter. Unreachable cluster pairs are tolerated: their routes become
    /// `u8::MAX` and the fabric fails the affected traffic instead of
    /// delivering it. When every edge has healed, routing returns to the
    /// construction-time baseline verbatim.
    ///
    /// Cost depends on the representation. Dense tables (builder graphs)
    /// re-run the all-destinations BFS. Implicit hierarchies clear the
    /// overlay — so a full heal is O(1) and allocation-free — then repair
    /// only what churn touched: intra-group link deaths rebuild group-local
    /// detours (O(group² · affected targets), independent of total cluster
    /// count, ties broken by lowest port exactly like the dense BFS);
    /// gateway deaths or a disconnected group escalate to exact
    /// per-destination reverse BFS over the affected destinations only.
    pub fn recompute(&mut self) {
        self.generation += 1;
        if matches!(self.repr, Repr::Hier(_)) {
            self.recompute_hier();
        } else {
            self.recompute_table();
        }
    }

    fn recompute_table(&mut self) {
        let Repr::Table {
            next_port,
            base_next_port,
        } = &mut self.repr
        else {
            unreachable!()
        };
        if self.dead.is_empty() {
            // Element-wise restore: same result as cloning the baseline
            // tables, without allocating fresh rows on every heal.
            for (row, base) in next_port.iter_mut().zip(base_next_port.iter()) {
                row.copy_from_slice(base);
            }
            return;
        }
        let n = self.clusters.len();
        for row in next_port.iter_mut() {
            row.fill(u8::MAX);
        }
        // `dst` indexes a *column* across rows the BFS picks (`next_port[p]
        // [dst]`), which `enumerate()` over rows cannot express.
        #[allow(clippy::needless_range_loop)]
        for dst in 0..n {
            // BFS over the hoisted scratch buffers: recompute runs on every
            // link-churn event and must not allocate.
            self.scratch.dist.fill(usize::MAX);
            self.scratch.dist[dst] = 0;
            self.scratch.queue.clear();
            self.scratch.queue.push_back(dst);
            while let Some(c) = self.scratch.queue.pop_front() {
                for att in self.clusters[c].iter() {
                    if let Attachment::Cluster(peer) = att {
                        let p = peer.cluster.0 as usize;
                        // A frame taking this step leaves `p` through port
                        // `peer.port`; skip if that directed edge is dead.
                        if self
                            .dead
                            .binary_search(&(peer.cluster.0, peer.port))
                            .is_ok()
                        {
                            continue;
                        }
                        if self.scratch.dist[p] == usize::MAX {
                            self.scratch.dist[p] = self.scratch.dist[c] + 1;
                            self.scratch.queue.push_back(p);
                        }
                        if self.scratch.dist[p] == self.scratch.dist[c] + 1
                            && next_port[p][dst] == u8::MAX
                        {
                            next_port[p][dst] = peer.port;
                        }
                    }
                }
            }
        }
    }

    fn recompute_hier(&mut self) {
        let Repr::Hier(h) = &mut self.repr else {
            unreachable!()
        };
        h.overlay.clear(); // keeps capacity: repeat churn cycles do not allocate
        if self.dead.is_empty() {
            h.scope = OverlayScope::Baseline;
            // Full heal restores the primary gateway classes.
            for (a, p) in h.gw_active.iter_mut().zip(h.gw.iter()) {
                a.copy_from_slice(p);
            }
            return;
        }
        // Redundant-gateway failover: re-derive the active class of every
        // role from the dead set (a pure function of it, so sharded replays
        // agree). A role whose primary class lost a gateway link moves to
        // its standby — unless the standby class lost one too, in which
        // case the exact repair below must route around both.
        if !h.gw_standby.is_empty() {
            for (a, p) in h.gw_active.iter_mut().zip(h.gw.iter()) {
                a.copy_from_slice(p);
            }
            let mut class_dead: Vec<(usize, u32, u32)> = Vec::new();
            for &(c, p) in &self.dead {
                if let Some(role) = h.port_role(c, p) {
                    if !class_dead.contains(&role) {
                        class_dead.push(role);
                    }
                }
            }
            for l in 1..h.n_levels() {
                for d in 0..h.dims[l] {
                    let primary = h.gw[l - 1][d as usize];
                    let standby = h.gw_standby[l - 1][d as usize];
                    if class_dead.contains(&(l, d, primary))
                        && !class_dead.contains(&(l, d, standby))
                    {
                        h.gw_active[l - 1][d as usize] = standby;
                    }
                }
            }
        }
        let dims0 = h.dims[0];
        // A dead gateway edge whose class is not routing its role carries no
        // baseline traffic: it neither forces the exact global repair nor
        // perturbs group-local detours.
        let gateway_relevant = |h: &Hier, c: u32, p: u8| -> bool {
            match h.port_role(c, p) {
                Some((l, d, r)) => h.gw_active[l - 1][d as usize] == r,
                None => true, // endpoint ports never appear in `dead`
            }
        };
        if self
            .dead
            .iter()
            .all(|&(c, p)| u32::from(p) < dims0 || !gateway_relevant(h, c, p))
        {
            if self.dead.iter().all(|&(_, p)| u32::from(p) >= dims0) {
                // Pure gateway failover: every dead edge was re-wired onto a
                // standby class, so the (new) baseline is ground truth.
                h.scope = OverlayScope::Baseline;
                return;
            }
            h.scope = OverlayScope::Waypoint;
            if waypoint_repair(h, &self.clusters, &self.dead, &mut self.scratch) {
                return;
            }
            // A group lost internal connectivity: group-local detours are
            // no longer ground truth (a path may exist through neighboring
            // groups). Fall back to the exact global repair.
            h.overlay.clear();
        }
        h.scope = OverlayScope::Target;
        target_repair(h, &self.clusters, &self.dead, &mut self.scratch);
    }

    /// Rebuild the *dense* all-destinations routing tables over surviving
    /// edges into a caller-owned buffer — the pre-overlay algorithm, kept as
    /// the measured baseline for the implicit representation's recompute
    /// speedup (the scale campaign times this against
    /// [`Topology::recompute`]). Not used by any routing path.
    #[doc(hidden)]
    pub fn dense_bfs_into(&self, table: &mut Vec<Vec<u8>>) {
        let n = self.clusters.len();
        table.resize_with(n, Vec::new);
        for row in table.iter_mut() {
            row.resize(n, u8::MAX);
            row.fill(u8::MAX);
        }
        let mut dist = vec![usize::MAX; n];
        let mut queue = VecDeque::with_capacity(n);
        for dst in 0..n {
            dist.fill(usize::MAX);
            dist[dst] = 0;
            queue.clear();
            queue.push_back(dst);
            while let Some(c) = queue.pop_front() {
                for att in self.clusters[c].iter() {
                    if let Attachment::Cluster(peer) = att {
                        let p = peer.cluster.0 as usize;
                        if self
                            .dead
                            .binary_search(&(peer.cluster.0, peer.port))
                            .is_ok()
                        {
                            continue;
                        }
                        if dist[p] == usize::MAX {
                            dist[p] = dist[c] + 1;
                            queue.push_back(p);
                        }
                        if dist[p] == dist[c] + 1 && table[p][dst] == u8::MAX {
                            table[p][dst] = peer.port;
                        }
                    }
                }
            }
        }
    }
}

/// Group-local repair for level-0 link deaths: for every group containing a
/// dead edge, rebuild the in-group reverse-BFS in-tree of every *affected*
/// local target (one some dead edge's baseline traffic used) and overlay the
/// ports that differ from the implicit baseline. Neighbor iteration follows
/// port order with first-write-wins — exactly the dense BFS tie-break, so
/// flat topologies repair to byte-identical routing decisions.
///
/// Returns `false` when a multi-level group is internally disconnected
/// (escalate to [`target_repair`]); flat topologies record `u8::MAX`
/// sentinels instead, because there the group *is* the whole graph and
/// unreached means unreachable.
fn waypoint_repair(
    h: &mut Hier,
    clusters: &[[Attachment; PORTS_PER_CLUSTER]],
    dead: &[DeadEdge],
    s: &mut Scratch,
) -> bool {
    let g = h.levels[0] as usize;
    let dims0 = h.dims[0] as usize;
    let flat = h.n_levels() == 1;
    s.groups.clear();
    for &(u, _) in dead {
        let grp = u / h.levels[0];
        if s.groups.last() != Some(&grp) {
            s.groups.push(grp); // dead is sorted, so groups arrive sorted
        }
    }
    for gi in 0..s.groups.len() {
        let grp = s.groups[gi];
        let base = grp * h.levels[0];
        // Affected local targets: some dead edge (u, p) in this group lies
        // on the baseline two-phase step from u toward the target.
        s.targets.clear();
        for t in 0..g as u32 {
            let affected = dead.iter().any(|&(u, p)| {
                u / h.levels[0] == grp && {
                    let ul = u - base;
                    ul != t && hypercube_next_dim(ul, t) as u8 == p
                }
            });
            if affected {
                s.targets.push(t);
            }
        }
        for ti in 0..s.targets.len() {
            let t = s.targets[ti];
            s.dist[..g].fill(usize::MAX);
            s.ports[..g].fill(u8::MAX);
            s.dist[t as usize] = 0;
            s.queue.clear();
            s.queue.push_back(t as usize);
            while let Some(c) = s.queue.pop_front() {
                // Only level-0 links (ports < dims0) stay inside the group.
                for att in clusters[base as usize + c].iter().take(dims0) {
                    if let Attachment::Cluster(peer) = att {
                        debug_assert_eq!(peer.cluster.0 / h.levels[0], grp);
                        let pl = (peer.cluster.0 - base) as usize;
                        if dead.binary_search(&(peer.cluster.0, peer.port)).is_ok() {
                            continue;
                        }
                        if s.dist[pl] == usize::MAX {
                            s.dist[pl] = s.dist[c] + 1;
                            s.queue.push_back(pl);
                        }
                        if s.dist[pl] == s.dist[c] + 1 && s.ports[pl] == u8::MAX {
                            s.ports[pl] = peer.port;
                        }
                    }
                }
            }
            for u in 0..g as u32 {
                if u == t {
                    continue;
                }
                let bfs = s.ports[u as usize];
                if bfs == u8::MAX {
                    if !flat {
                        return false; // detour may exist via other groups
                    }
                    h.overlay.insert((base + u, base + t), u8::MAX);
                } else if bfs != hypercube_next_dim(u, t) as u8 {
                    h.overlay.insert((base + u, base + t), bfs);
                }
            }
        }
    }
    true
}

/// Exact global repair: for every destination whose baseline in-tree lost an
/// edge, run a full reverse BFS over the surviving physical links and
/// overlay every cluster whose port differs from the implicit baseline
/// (`u8::MAX` marks unreachable). Destinations whose baseline in-tree is
/// intact need no entries: every baseline step toward them is alive, by
/// definition of "affected".
fn target_repair(
    h: &mut Hier,
    clusters: &[[Attachment; PORTS_PER_CLUSTER]],
    dead: &[DeadEdge],
    s: &mut Scratch,
) {
    let n = clusters.len();
    s.targets.clear();
    for dstc in 0..n as u32 {
        let affected = dead
            .iter()
            .any(|&(u, p)| u != dstc && h.base_port(u, dstc) == p);
        if affected {
            s.targets.push(dstc);
        }
    }
    for ti in 0..s.targets.len() {
        let dstc = s.targets[ti];
        s.dist[..n].fill(usize::MAX);
        s.ports[..n].fill(u8::MAX);
        s.dist[dstc as usize] = 0;
        s.queue.clear();
        s.queue.push_back(dstc as usize);
        while let Some(c) = s.queue.pop_front() {
            for att in clusters[c].iter() {
                if let Attachment::Cluster(peer) = att {
                    let p = peer.cluster.0 as usize;
                    if dead.binary_search(&(peer.cluster.0, peer.port)).is_ok() {
                        continue;
                    }
                    if s.dist[p] == usize::MAX {
                        s.dist[p] = s.dist[c] + 1;
                        s.queue.push_back(p);
                    }
                    if s.dist[p] == s.dist[c] + 1 && s.ports[p] == u8::MAX {
                        s.ports[p] = peer.port;
                    }
                }
            }
        }
        for u in 0..n as u32 {
            if u == dstc {
                continue;
            }
            let bfs = s.ports[u as usize];
            if bfs != h.base_port(u, dstc) {
                h.overlay.insert((u, dstc), bfs);
            }
        }
    }
}

/// Number of hypercube dimensions needed for `n` clusters.
fn dims_for(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Next dimension to correct when routing `src -> dst` in an incomplete
/// hypercube: first clear differing 1-bits of `src` from high to low, then
/// set differing 1-bits of `dst` from low to high. Every intermediate id is
/// `<= max(src, dst)`, hence always a valid cluster — per hierarchy level.
fn hypercube_next_dim(src: u32, dst: u32) -> u32 {
    debug_assert_ne!(src, dst);
    let diff = src ^ dst;
    let clears = diff & src; // bits that are 1 in src, 0 in dst
    if clears != 0 {
        u32::BITS - 1 - clears.leading_zeros()
    } else {
        diff.trailing_zeros() // lowest bit to set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cluster_layout() {
        let t = Topology::single_cluster(12).unwrap();
        assert_eq!(t.n_clusters(), 1);
        assert_eq!(t.n_endpoints(), 12);
        assert_eq!(t.hops(NodeAddr(0), NodeAddr(11)), 0);
        assert!(Topology::single_cluster(13).is_err());
    }

    #[test]
    fn min_cross_cluster_links_reflects_topology() {
        // Single cluster: no path ever crosses a boundary.
        assert_eq!(
            Topology::single_cluster(4)
                .unwrap()
                .min_cross_cluster_links(),
            None
        );
        // Hypercube: adjacent clusters exist, so the minimum path is
        // up-link + one inter-cluster hop + down-link.
        assert_eq!(
            Topology::incomplete_hypercube(10, 7)
                .unwrap()
                .min_cross_cluster_links(),
            Some(3)
        );
    }

    #[test]
    fn route_on_same_cluster_is_direct_port() {
        let t = Topology::single_cluster(3).unwrap();
        let c = ClusterId(0);
        assert_eq!(t.route(c, NodeAddr(0)), 0);
        assert_eq!(t.route(c, NodeAddr(2)), 2);
    }

    #[test]
    fn paper_1024_node_configuration() {
        // "A hypercube-based system with 1024 nodes can be built with 256
        // clusters by using 8 of the 12 ports on each cluster for
        // connections to other clusters and the other four for connections
        // to processing nodes." (§1)
        let t = Topology::incomplete_hypercube(256, 4).unwrap();
        assert_eq!(t.n_clusters(), 256);
        assert_eq!(t.n_endpoints(), 1024);
        // Longest route: 8 dimension corrections.
        assert_eq!(t.hops(NodeAddr(0), NodeAddr(1023)), 8);
    }

    #[test]
    fn incomplete_hypercube_routes_stay_valid() {
        // 6 clusters: ids 0..6, 3 dimensions, some links missing.
        let t = Topology::incomplete_hypercube(6, 2).unwrap();
        for s in t.endpoints() {
            for d in t.endpoints() {
                if s != d {
                    let path = t.cluster_path(s, d);
                    for c in &path {
                        assert!((c.0 as usize) < 6, "intermediate {c:?} out of range");
                    }
                    // Minimality: hop count equals hamming distance when it
                    // uses only existing links; never exceeds dims * 2.
                    let sc = t.cluster_of(s).0 as usize;
                    let dc = t.cluster_of(d).0 as usize;
                    assert_eq!(path.len() - 1, (sc ^ dc).count_ones() as usize);
                }
            }
        }
    }

    #[test]
    fn bfs_routing_on_arbitrary_graph() {
        // A line of three clusters: 0 - 1 - 2.
        let mut b = TopologyBuilder::new();
        let c0 = b.add_cluster();
        let c1 = b.add_cluster();
        let c2 = b.add_cluster();
        b.connect(
            PortRef {
                cluster: c0,
                port: 0,
            },
            PortRef {
                cluster: c1,
                port: 0,
            },
        )
        .unwrap();
        b.connect(
            PortRef {
                cluster: c1,
                port: 1,
            },
            PortRef {
                cluster: c2,
                port: 0,
            },
        )
        .unwrap();
        let a = b.attach_endpoint_auto(c0).unwrap();
        let z = b.attach_endpoint_auto(c2).unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.hops(a, z), 2);
        assert_eq!(
            t.cluster_path(a, z),
            vec![ClusterId(0), ClusterId(1), ClusterId(2)]
        );
    }

    #[test]
    fn disconnected_graph_rejected() {
        let mut b = TopologyBuilder::new();
        let c0 = b.add_cluster();
        let c1 = b.add_cluster();
        b.attach_endpoint_auto(c0).unwrap();
        b.attach_endpoint_auto(c1).unwrap();
        assert!(matches!(b.build(), Err(TopologyError::Unreachable { .. })));
    }

    #[test]
    fn builder_detects_misuse() {
        let mut b = TopologyBuilder::new();
        let c0 = b.add_cluster();
        let c1 = b.add_cluster();
        assert!(matches!(
            b.connect(
                PortRef {
                    cluster: c0,
                    port: 0
                },
                PortRef {
                    cluster: c0,
                    port: 1
                }
            ),
            Err(TopologyError::SelfLoop(_))
        ));
        assert!(matches!(
            b.connect(
                PortRef {
                    cluster: c0,
                    port: 12
                },
                PortRef {
                    cluster: c1,
                    port: 0
                }
            ),
            Err(TopologyError::PortOutOfRange(_))
        ));
        b.connect(
            PortRef {
                cluster: c0,
                port: 0,
            },
            PortRef {
                cluster: c1,
                port: 0,
            },
        )
        .unwrap();
        assert!(matches!(
            b.attach_endpoint(PortRef {
                cluster: c0,
                port: 0
            }),
            Err(TopologyError::PortInUse(_))
        ));
        assert!(matches!(
            b.attach_endpoint(PortRef {
                cluster: ClusterId(9),
                port: 0
            }),
            Err(TopologyError::UnknownCluster(_))
        ));
    }

    #[test]
    fn golden_routes_survive_missing_dimensions() {
        // 6 clusters = 3 dimensions with partners 6 and 7 absent: links are
        // dim0 {0-1, 2-3, 4-5}, dim1 {0-2, 1-3}, dim2 {0-4, 1-5}.
        let t = Topology::incomplete_hypercube(6, 1).unwrap();
        // Endpoint i sits on cluster i. Two-phase rule, 5(101) -> 2(010):
        // clear bit 2 (5->1), clear bit 0 (1->0), set bit 1 (0->2).
        assert_eq!(
            t.cluster_path(NodeAddr(5), NodeAddr(2)),
            vec![ClusterId(5), ClusterId(1), ClusterId(0), ClusterId(2)]
        );
        assert_eq!(t.hops(NodeAddr(5), NodeAddr(2)), 3);
        // 4(100) -> 3(011): clear bit 2, set bit 0, set bit 1.
        assert_eq!(
            t.cluster_path(NodeAddr(4), NodeAddr(3)),
            vec![ClusterId(4), ClusterId(0), ClusterId(1), ClusterId(3)]
        );
    }

    #[test]
    fn recompute_reroutes_around_dead_edges() {
        // 4 clusters, full square: 0-1-3 and 0-2-3.
        let mut t = Topology::incomplete_hypercube(4, 1).unwrap();
        assert_eq!(
            t.cluster_path(NodeAddr(0), NodeAddr(3)),
            vec![ClusterId(0), ClusterId(1), ClusterId(3)]
        );
        assert_eq!(t.generation(), 0);
        // Kill the directed edge out of c0 toward c1 (dim 0 uses port 0).
        t.set_edge_state(
            PortRef {
                cluster: ClusterId(0),
                port: 0,
            },
            false,
        );
        assert!(t.has_dead_edges());
        t.recompute();
        assert_eq!(t.generation(), 1);
        assert_eq!(
            t.cluster_path(NodeAddr(0), NodeAddr(3)),
            vec![ClusterId(0), ClusterId(2), ClusterId(3)],
            "route must detour through the surviving diagonal"
        );
        // The reverse direction is untouched (directed edge state).
        assert_eq!(
            t.cluster_path(NodeAddr(3), NodeAddr(0)),
            vec![ClusterId(3), ClusterId(1), ClusterId(0)]
        );
        assert!(t.reachable(ClusterId(0), ClusterId(1)), "via c2-c3-c1");
    }

    #[test]
    fn recompute_tolerates_unreachable_and_heals_to_baseline() {
        // 2 clusters, a single cable.
        let mut t = Topology::incomplete_hypercube(2, 1).unwrap();
        let base_01 = t.route(ClusterId(0), NodeAddr(1));
        t.set_edge_state(
            PortRef {
                cluster: ClusterId(0),
                port: 0,
            },
            false,
        );
        t.recompute();
        assert!(!t.reachable(ClusterId(0), ClusterId(1)));
        assert!(
            t.reachable(ClusterId(1), ClusterId(0)),
            "reverse direction alive"
        );
        assert_eq!(t.route(ClusterId(0), NodeAddr(1)), u8::MAX);
        assert_eq!(t.try_cluster_path(NodeAddr(0), NodeAddr(1)), None);
        // Heal: the construction-time routing comes back verbatim.
        t.set_edge_state(
            PortRef {
                cluster: ClusterId(0),
                port: 0,
            },
            true,
        );
        t.recompute();
        assert_eq!(t.generation(), 2);
        assert_eq!(t.route(ClusterId(0), NodeAddr(1)), base_01);
        assert_eq!(t.base_route(ClusterId(0), NodeAddr(1)), base_01);
        assert!(t.reachable(ClusterId(0), ClusterId(1)));
        assert_eq!(t.overlay_len(), 0, "heal clears every detour");
    }

    #[test]
    fn dims_for_counts() {
        assert_eq!(dims_for(1), 0);
        assert_eq!(dims_for(2), 1);
        assert_eq!(dims_for(3), 2);
        assert_eq!(dims_for(4), 2);
        assert_eq!(dims_for(5), 3);
        assert_eq!(dims_for(256), 8);
    }

    #[test]
    fn two_phase_rule_clears_then_sets() {
        // 2(010) -> 5(101): clear bit1 first, then set bit0, then bit2.
        assert_eq!(hypercube_next_dim(0b010, 0b101), 1);
        assert_eq!(hypercube_next_dim(0b000, 0b101), 0);
        assert_eq!(hypercube_next_dim(0b001, 0b101), 2);
    }

    #[test]
    fn hierarchical_two_level_golden_route() {
        // Two groups of four clusters (square each); one gateway role at
        // level 1 lands on residue 0, so clusters 0 and 4 carry the
        // inter-group cable on port dims0+eps = 3.
        let t = Topology::hierarchical_hypercube(&[4, 2], 1).unwrap();
        assert_eq!(t.n_clusters(), 8);
        assert_eq!(t.n_endpoints(), 8);
        assert_eq!(t.mode(), RoutingMode::Hierarchical);
        assert_eq!(t.hier_levels(), Some(&[4u32, 2][..]));
        // 3 -> 5: walk the group to gateway 0 (3->1->0), cross to 4, then
        // one in-group hop to 5.
        assert_eq!(
            t.cluster_path(NodeAddr(3), NodeAddr(5)),
            vec![
                ClusterId(3),
                ClusterId(1),
                ClusterId(0),
                ClusterId(4),
                ClusterId(5)
            ]
        );
        // The gateway cable itself.
        assert_eq!(
            t.attachment(PortRef {
                cluster: ClusterId(0),
                port: 3
            }),
            Attachment::Cluster(PortRef {
                cluster: ClusterId(4),
                port: 3
            })
        );
        assert_eq!(t.baseline_cluster_links(ClusterId(3), ClusterId(5)), 6);
        assert_eq!(t.baseline_cluster_links(ClusterId(3), ClusterId(3)), 0);
    }

    #[test]
    fn hierarchical_every_pair_routes_and_is_reachable() {
        let t = Topology::hierarchical_hypercube(&[4, 4], 1).unwrap();
        assert_eq!(t.n_clusters(), 16);
        for s in t.endpoints() {
            for d in t.endpoints() {
                if s != d {
                    let path = t.cluster_path(s, d); // asserts loop-free
                    assert!(path.len() <= t.n_clusters());
                    assert!(t.reachable(t.cluster_of(s), t.cluster_of(d)));
                }
            }
        }
    }

    #[test]
    fn hierarchical_level0_churn_detours_and_heals_o1() {
        let mut t = Topology::hierarchical_hypercube(&[4, 2], 1).unwrap();
        // Kill c3 -> c1 (dim 1 of the local square is port 1): traffic from
        // cluster 3 bound for the gateway (c0) must detour via c2.
        t.set_edge_state(
            PortRef {
                cluster: ClusterId(3),
                port: 1,
            },
            false,
        );
        t.recompute();
        assert_eq!(t.generation(), 1);
        assert!(t.overlay_len() > 0, "detours live in the overlay");
        assert_eq!(
            t.cluster_path(NodeAddr(3), NodeAddr(5)),
            vec![
                ClusterId(3),
                ClusterId(2),
                ClusterId(0),
                ClusterId(4),
                ClusterId(5)
            ]
        );
        // Other groups are untouched: no overlay entries reference them.
        assert_eq!(
            t.cluster_path(NodeAddr(5), NodeAddr(7)),
            vec![ClusterId(5), ClusterId(7)]
        );
        // Heal: O(1) overlay clear back to the baseline.
        t.set_edge_state(
            PortRef {
                cluster: ClusterId(3),
                port: 1,
            },
            true,
        );
        t.recompute();
        assert_eq!(t.overlay_len(), 0);
        assert_eq!(
            t.cluster_path(NodeAddr(3), NodeAddr(5)),
            vec![
                ClusterId(3),
                ClusterId(1),
                ClusterId(0),
                ClusterId(4),
                ClusterId(5)
            ]
        );
    }

    #[test]
    fn hierarchical_gateway_churn_escalates_to_exact_repair() {
        let mut t = Topology::hierarchical_hypercube(&[4, 2], 1).unwrap();
        // Kill the only inter-group cable in the 0->4 direction.
        t.set_edge_state(
            PortRef {
                cluster: ClusterId(0),
                port: 3,
            },
            false,
        );
        t.recompute();
        assert!(!t.reachable(ClusterId(1), ClusterId(5)));
        assert!(t.reachable(ClusterId(5), ClusterId(1)), "reverse alive");
        assert_eq!(t.try_cluster_path(NodeAddr(1), NodeAddr(5)), None);
        // In-group routing still works on both sides.
        assert!(t.reachable(ClusterId(1), ClusterId(2)));
        assert!(t.reachable(ClusterId(5), ClusterId(6)));
        t.set_edge_state(
            PortRef {
                cluster: ClusterId(0),
                port: 3,
            },
            true,
        );
        t.recompute();
        assert_eq!(t.overlay_len(), 0);
        assert!(t.reachable(ClusterId(1), ClusterId(5)));
    }

    #[test]
    fn redundant_gateway_fails_over_and_heals() {
        // [4,2] redundant: primary gateway class residue 0 (clusters 0, 4),
        // standby class residue 1 (clusters 1, 5), both on port 3.
        let mut t = Topology::hierarchical_hypercube_redundant(&[4, 2], 1).unwrap();
        assert_eq!(
            t.attachment(PortRef {
                cluster: ClusterId(1),
                port: 3
            }),
            Attachment::Cluster(PortRef {
                cluster: ClusterId(5),
                port: 3
            }),
            "standby class carries its own physical cable"
        );
        // Baseline routes via the primary gateway.
        assert_eq!(
            t.cluster_path(NodeAddr(3), NodeAddr(5)),
            vec![
                ClusterId(3),
                ClusterId(1),
                ClusterId(0),
                ClusterId(4),
                ClusterId(5)
            ]
        );
        // Kill the primary inter-group cable (0 -> 4 direction): the whole
        // role re-wires onto the standby class — no overlay entries, every
        // pair still reachable.
        t.set_edge_state(
            PortRef {
                cluster: ClusterId(0),
                port: 3,
            },
            false,
        );
        t.recompute();
        assert_eq!(t.overlay_len(), 0, "failover is a re-wire, not a detour");
        assert_eq!(
            t.cluster_path(NodeAddr(3), NodeAddr(5)),
            vec![ClusterId(3), ClusterId(1), ClusterId(5)],
            "traffic crosses at the standby gateway"
        );
        for s in 0..8u32 {
            for d in 0..8u32 {
                assert!(t.reachable(ClusterId(s), ClusterId(d)), "{s}->{d}");
            }
        }
        // Heal restores the primary class.
        t.set_edge_state(
            PortRef {
                cluster: ClusterId(0),
                port: 3,
            },
            true,
        );
        t.recompute();
        assert_eq!(
            t.cluster_path(NodeAddr(3), NodeAddr(5)),
            vec![
                ClusterId(3),
                ClusterId(1),
                ClusterId(0),
                ClusterId(4),
                ClusterId(5)
            ]
        );
    }

    #[test]
    fn redundant_gateway_double_fault_escalates() {
        let mut t = Topology::hierarchical_hypercube_redundant(&[4, 2], 1).unwrap();
        // Kill both classes' cables in the forward direction: no failover
        // target remains, so the exact repair must declare unreachability.
        t.set_edge_state(
            PortRef {
                cluster: ClusterId(0),
                port: 3,
            },
            false,
        );
        t.set_edge_state(
            PortRef {
                cluster: ClusterId(1),
                port: 3,
            },
            false,
        );
        t.recompute();
        assert!(!t.reachable(ClusterId(2), ClusterId(6)));
        assert!(t.reachable(ClusterId(6), ClusterId(2)), "reverse alive");
        // One heal brings the standby back: reachable again via failover.
        t.set_edge_state(
            PortRef {
                cluster: ClusterId(1),
                port: 3,
            },
            true,
        );
        t.recompute();
        assert!(t.reachable(ClusterId(2), ClusterId(6)));
        assert_eq!(t.overlay_len(), 0);
    }

    #[test]
    fn redundant_world_routes_every_pair() {
        let t = Topology::hierarchical_hypercube_redundant(&[4, 4], 2).unwrap();
        assert_eq!(t.n_clusters(), 16);
        for s in t.endpoints() {
            for d in t.endpoints() {
                if s != d {
                    let path = t.cluster_path(s, d); // asserts loop-free
                    assert!(path.len() <= t.n_clusters());
                }
            }
        }
    }

    #[test]
    fn hierarchy_port_budget_is_enforced() {
        // [8,16]: 3 level-0 dims, 4 super-dims spread over 8 residues (max
        // one gateway role per cluster). 3 + 9 + 1 = 13 ports: too many.
        assert!(matches!(
            Topology::hierarchical_hypercube(&[8, 16], 9),
            Err(TopologyError::NotEnoughPorts { needed: 13, .. })
        ));
        // 3 + 8 + 1 = 12: exactly fits.
        let t = Topology::hierarchical_hypercube(&[8, 16], 8).unwrap();
        assert_eq!(t.n_clusters(), 128);
        assert_eq!(t.n_endpoints(), 1024);
    }

    #[test]
    fn scale_config_fits_port_budget() {
        // The 100k-endpoint campaign shape: 25_600 clusters, 102_400
        // endpoints, 6 + 4 + 2 = 12 ports at the busiest gateway.
        let t = Topology::hierarchical_hypercube(&[64, 20, 20], 4).unwrap();
        assert_eq!(t.n_clusters(), 25_600);
        assert_eq!(t.n_endpoints(), 102_400);
        // Spot-check a long route: valid, loop-free, bounded.
        let p = t.cluster_path(NodeAddr(0), NodeAddr(102_399));
        assert!(p.len() <= 64);
    }

    #[test]
    fn dense_bfs_matches_implicit_reachability() {
        let mut t = Topology::incomplete_hypercube(6, 1).unwrap();
        t.set_edge_state(
            PortRef {
                cluster: ClusterId(0),
                port: 0,
            },
            false,
        );
        t.recompute();
        let mut table = Vec::new();
        t.dense_bfs_into(&mut table);
        for a in 0..6u32 {
            for b in 0..6u32 {
                if a != b {
                    assert_eq!(
                        table[a as usize][b as usize] != u8::MAX,
                        t.reachable(ClusterId(a), ClusterId(b)),
                        "dense vs implicit disagree on {a}->{b}"
                    );
                }
            }
        }
    }
}
