//! Traffic tests over non-hypercube topologies (the hardware "allows
//! connections with arbitrary topologies", §1) and fabric edge cases.

use hpcnet::driver::StandaloneNet;
use hpcnet::{Fabric, Frame, NetConfig, NodeAddr, Payload, PortRef, TopologyBuilder};

/// A *tree* of clusters routed by BFS carries all-pairs traffic: acyclic
/// routes cannot form a buffer-dependency cycle, so store-and-forward is
/// deadlock-free (like the hypercube's dimension-ordered routes).
#[test]
fn tree_topology_all_pairs() {
    let mut b = TopologyBuilder::new();
    let root = b.add_cluster();
    let kids: Vec<_> = (0..3).map(|_| b.add_cluster()).collect();
    for (i, &k) in kids.iter().enumerate() {
        b.connect(
            PortRef {
                cluster: root,
                port: i as u8,
            },
            PortRef {
                cluster: k,
                port: 0,
            },
        )
        .unwrap();
    }
    let mut eps = Vec::new();
    for &c in kids.iter().chain(std::iter::once(&root)) {
        eps.push(b.attach_endpoint_auto(c).unwrap());
        eps.push(b.attach_endpoint_auto(c).unwrap());
    }
    let topo = b.build().unwrap();
    let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
    let n = eps.len() as u32;
    let mut expected = 0;
    for s in 0..n {
        for d in 0..n {
            if s != d {
                net.send_at(
                    u64::from(s) * 1000,
                    Frame::unicast(
                        NodeAddr(s),
                        NodeAddr(d),
                        0,
                        u64::from(s * n + d),
                        Payload::Synthetic(64),
                    ),
                );
                expected += 1;
            }
        }
    }
    net.run();
    assert_eq!(net.delivered.len(), expected);
}

/// Cyclic routes + finite store-and-forward buffers can deadlock under
/// saturation: on a 4-cluster ring with shortest-path (BFS) routing, heavy
/// all-pairs traffic wedges with frames holding buffers in a cycle. This is
/// exactly why the paper's hypercube uses dimension-ordered (two-phase
/// bit-fixing) routing — our hypercube router is deadlock-free, arbitrary
/// graphs are the deployer's responsibility (choose acyclic routes or
/// over-provision buffers).
#[test]
fn ring_with_cyclic_routes_can_deadlock() {
    let mut b = TopologyBuilder::new();
    let cs: Vec<_> = (0..4).map(|_| b.add_cluster()).collect();
    for i in 0..4 {
        b.connect(
            PortRef {
                cluster: cs[i],
                port: 0,
            },
            PortRef {
                cluster: cs[(i + 1) % 4],
                port: 1,
            },
        )
        .unwrap();
    }
    let mut eps = Vec::new();
    for &c in &cs {
        eps.push(b.attach_endpoint_auto(c).unwrap());
        eps.push(b.attach_endpoint_auto(c).unwrap());
    }
    let topo = b.build().unwrap();
    let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
    let n = eps.len() as u32;
    for s in 0..n {
        for d in 0..n {
            if s != d {
                net.send_at(
                    u64::from(s) * 1000,
                    Frame::unicast(
                        NodeAddr(s),
                        NodeAddr(d),
                        0,
                        u64::from(s * n + d),
                        Payload::Synthetic(64),
                    ),
                );
            }
        }
    }
    net.run_inner(); // no quiescence assertion: we expect a wedge
    assert!(
        net.fabric.in_flight() > 0,
        "this saturation pattern deadlocks cyclic routes (deterministically)"
    );
}

/// An endpoint can send to itself (loopback through its cluster).
#[test]
fn self_send_loops_through_the_cluster() {
    let topo = hpcnet::Topology::single_cluster(2).unwrap();
    let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
    net.send_at(
        0,
        Frame::unicast(NodeAddr(0), NodeAddr(0), 0, 1, Payload::Synthetic(8)),
    );
    net.run();
    assert_eq!(net.delivered.len(), 1);
    assert_eq!(net.delivered[0].1, NodeAddr(0));
}

/// Sustained one-way saturation: the link utilization report shows the
/// bottleneck link near 100% busy.
#[test]
fn saturated_link_shows_in_the_report() {
    let topo = hpcnet::Topology::single_cluster(2).unwrap();
    let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
    const N: u64 = 100;
    for i in 0..N {
        net.send_at(
            0,
            Frame::unicast(NodeAddr(0), NodeAddr(1), 0, i, Payload::Synthetic(1024)),
        );
    }
    net.run();
    let total_ns = net.now();
    let report = net.fabric.link_report();
    let busiest = report.iter().map(|(_, _, b, _)| *b).max().unwrap();
    assert!(
        busiest as f64 > 0.9 * total_ns as f64,
        "bottleneck link should be ~saturated: busy {busiest} of {total_ns}"
    );
}
