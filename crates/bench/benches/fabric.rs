//! Criterion benchmarks of the HPC fabric model (host wall time): frame
//! delivery rate through the standalone driver, unicast and multicast, and
//! the S/NET baseline simulator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hpcnet::driver::StandaloneNet;
use hpcnet::{Dest, Fabric, Frame, NetConfig, NodeAddr, Payload, Topology};
use snet::{SnetConfig, SnetSim, Strategy};

fn bench_unicast(c: &mut Criterion) {
    let mut g = c.benchmark_group("hpcnet");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("unicast_1k_frames_hypercube", |b| {
        b.iter_batched(
            || {
                let topo = Topology::incomplete_hypercube(8, 4).unwrap();
                let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
                for i in 0..1_000u64 {
                    let src = (i % 32) as u32;
                    let dst = ((i + 17) % 32) as u32;
                    net.send_at(
                        i * 10,
                        Frame::unicast(NodeAddr(src), NodeAddr(dst), 0, i, Payload::Synthetic(256)),
                    );
                }
                net
            },
            |mut net| {
                net.run();
                assert_eq!(net.delivered.len(), 1_000);
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_multicast(c: &mut Criterion) {
    let mut g = c.benchmark_group("hpcnet");
    g.throughput(Throughput::Elements(100 * 31));
    g.bench_function("multicast_100_frames_to_31", |b| {
        b.iter_batched(
            || {
                let topo = Topology::incomplete_hypercube(8, 4).unwrap();
                let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
                let everyone: std::sync::Arc<[NodeAddr]> =
                    (1..32).map(NodeAddr).collect::<Vec<_>>().into();
                for i in 0..100u64 {
                    net.send_at(
                        i * 100_000,
                        Frame {
                            src: NodeAddr(0),
                            dst: Dest::Multicast(everyone.clone()),
                            kind: 0,
                            seq: i,
                            payload: Payload::Synthetic(512),
                            corrupted: false,
                        },
                    );
                }
                net
            },
            |mut net| {
                net.run();
                assert_eq!(net.delivered.len(), 3_100);
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_snet(c: &mut Criterion) {
    let mut g = c.benchmark_group("snet");
    g.bench_function("reservation_burst_11x10", |b| {
        b.iter(|| {
            let mut sim = SnetSim::new(SnetConfig::paper_1985(), 12, Strategy::Reservation, 42);
            for s in 1..12 {
                sim.enqueue(s, 0, 1024, 10, 0);
            }
            let r = sim.run(60_000_000_000);
            assert!(r.completed);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_unicast, bench_multicast, bench_snet);
criterion_main!(benches);
