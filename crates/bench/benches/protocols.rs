//! Criterion benchmarks of full VORX protocol stacks (host wall time):
//! the per-cell runners that the Table 1 / Table 2 harnesses sweep, so a
//! regression in simulator performance (or an accidental protocol change
//! that alters simulated results) is caught by `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use vorx_bench::{table1_cell, table2_cell};

fn bench_channel_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("vorx");
    g.sample_size(10);
    g.bench_function("table2_cell_4B_x100", |b| {
        b.iter(|| {
            let us = table2_cell(4, 100);
            assert!((250.0..360.0).contains(&us), "calibration drifted: {us}");
        });
    });
    g.bench_function("table2_cell_1024B_x100", |b| {
        b.iter(|| {
            let us = table2_cell(1024, 100);
            assert!((900.0..1150.0).contains(&us), "calibration drifted: {us}");
        });
    });
    g.finish();
}

fn bench_sliding_window_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("vorx");
    g.sample_size(10);
    g.bench_function("table1_cell_8bufs_4B_x100", |b| {
        b.iter(|| {
            let us = table1_cell(8, 4, 100);
            assert!((120.0..260.0).contains(&us), "calibration drifted: {us}");
        });
    });
    g.finish();
}

criterion_group!(benches, bench_channel_cell, bench_sliding_window_cell);
criterion_main!(benches);
