//! Criterion benchmarks of the simulation engine itself (host wall time):
//! how fast `desim` dispatches events and switches cooperative processes.
//! These guard the usability of the reproduction — every experiment in
//! `src/bin/` runs on top of this engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use desim::{Ctx, ProcId, SimDuration, Simulation, Wakeup};

#[derive(Default)]
struct World {
    counter: u64,
}

/// Dispatch 10k pure events through the queue.
fn bench_event_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("desim");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("event_dispatch_10k", |b| {
        b.iter_batched(
            || {
                let sim = Simulation::new(World::default());
                for i in 0..10_000u64 {
                    sim.schedule_in(SimDuration::from_ns(i), |w: &mut World, _| {
                        w.counter += 1;
                    });
                }
                sim
            },
            |mut sim| {
                let r = sim.run_to_idle();
                assert!(r.all_finished());
                assert_eq!(sim.world().counter, 10_000);
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

/// 1k sleep/wake cycles of one cooperative process (two thread handoffs
/// per cycle) — the cost floor of simulated blocking software.
fn bench_process_switching(c: &mut Criterion) {
    let mut g = c.benchmark_group("desim");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("process_sleep_1k", |b| {
        b.iter_batched(
            || {
                let sim = Simulation::new(World::default());
                sim.spawn("sleeper", |ctx: Ctx<World>| {
                    for _ in 0..1_000 {
                        ctx.sleep(SimDuration::from_us(1));
                    }
                });
                sim
            },
            |mut sim| {
                assert!(sim.run_to_idle().all_finished());
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

#[derive(Default)]
struct ChainWorld {
    pids: Vec<ProcId>,
    turn: usize,
}

/// A 256-process wake chain: each process waits its turn, then wakes its
/// successor with a zero-delay wake. Every link is one park/unpark handoff
/// plus one same-instant event — the dominant pattern of simulated kernels
/// acknowledging each other (and the worst case for the old channel baton).
fn bench_wake_chain(c: &mut Criterion) {
    const LINKS: usize = 256;
    let mut g = c.benchmark_group("desim");
    g.throughput(Throughput::Elements(LINKS as u64));
    g.bench_function("wake_chain_256", |b| {
        b.iter_batched(
            || {
                let sim = Simulation::new(ChainWorld::default());
                let pids: Vec<ProcId> = (0..LINKS)
                    .map(|i| {
                        sim.spawn(format!("link{i}"), move |ctx: Ctx<ChainWorld>| {
                            ctx.wait_until(move |w, _| (w.turn == i).then_some(()));
                            ctx.with(move |w, s| {
                                w.turn += 1;
                                if let Some(&next) = w.pids.get(i + 1) {
                                    s.wake(next, Wakeup::START);
                                }
                            });
                        })
                    })
                    .collect();
                sim.setup(move |w, _| w.pids = pids);
                sim
            },
            |mut sim| {
                assert!(sim.run_to_idle().all_finished());
                assert_eq!(sim.world().turn, LINKS);
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_dispatch,
    bench_process_switching,
    bench_wake_chain
);
criterion_main!(benches);
