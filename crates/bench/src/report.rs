//! Paper-vs-measured reporting helpers shared by every experiment binary.

/// One comparison row: a label, the paper's value, and ours.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (e.g. "4-byte messages, 8 buffers").
    pub label: String,
    /// The value the paper reports (None when the paper gives no number).
    pub paper: Option<f64>,
    /// The value we measured.
    pub measured: f64,
    /// Unit for both columns.
    pub unit: &'static str,
}

impl Row {
    /// Build a row.
    pub fn new(
        label: impl Into<String>,
        paper: Option<f64>,
        measured: f64,
        unit: &'static str,
    ) -> Self {
        Row {
            label: label.into(),
            paper,
            measured,
            unit,
        }
    }

    /// measured / paper, if the paper reports a value.
    pub fn ratio(&self) -> Option<f64> {
        self.paper.map(|p| self.measured / p)
    }
}

/// Render rows as an aligned paper-vs-measured table.
pub fn render(title: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let w = rows
        .iter()
        .map(|r| r.label.len())
        .max()
        .unwrap_or(10)
        .max(10);
    out.push_str(&format!(
        "{:w$}  {:>12}  {:>12}  {:>8}\n",
        "workload", "paper", "measured", "ratio",
    ));
    for r in rows {
        let paper = r
            .paper
            .map(|p| format!("{p:.1} {}", r.unit))
            .unwrap_or_else(|| "-".into());
        let ratio = r
            .ratio()
            .map(|x| format!("{x:.2}x"))
            .unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "{:w$}  {:>12}  {:>12}  {:>8}\n",
            r.label,
            paper,
            format!("{:.1} {}", r.measured, r.unit),
            ratio,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_render() {
        let rows = vec![
            Row::new("a", Some(100.0), 110.0, "us"),
            Row::new("b", None, 5.0, "us"),
        ];
        assert!((rows[0].ratio().unwrap() - 1.1).abs() < 1e-9);
        assert!(rows[1].ratio().is_none());
        let s = render("T", &rows);
        assert!(s.contains("== T =="));
        assert!(s.contains("1.10x"));
        assert!(s.contains('-'));
    }
}
