//! Reusable experiment runners (one function per table/figure/in-text
//! measurement). All return simulated-time measurements.

use desim::{SimDuration, SimTime};
use hpcnet::{NodeAddr, Payload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vorx::alloc::UserId;
use vorx::api::user_compute;
use vorx::cpu::CpuCat;
use vorx::objmgr::ObjMgrMode;
use vorx::protocols::sliding_window::{self, SwParams};
use vorx::udco::{self, UdcoMode};
use vorx::{channel, VorxBuilder};

/// Message sizes used by Tables 1 and 2.
pub const TABLE_SIZES: [u32; 4] = [4, 64, 256, 1024];
/// Buffer counts used by Table 1.
pub const TABLE1_BUFS: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];
/// Paper values for Table 1 (µs/msg), rows = buffers, cols = sizes.
pub const TABLE1_PAPER: [[f64; 4]; 7] = [
    [414.0, 451.0, 574.0, 1071.0],
    [290.0, 317.0, 412.0, 787.0],
    [227.0, 251.0, 330.0, 644.0],
    [196.0, 218.0, 289.0, 573.0],
    [179.0, 200.0, 267.0, 535.0],
    [172.0, 192.0, 257.0, 518.0],
    [164.0, 184.0, 248.0, 504.0],
];
/// Paper values for Table 2 (µs/msg) per message size.
pub const TABLE2_PAPER: [f64; 4] = [303.0, 341.0, 474.0, 997.0];

/// Table 1: sliding-window ("reader-active") protocol latency between two
/// nodes on one cluster. The sender transmits `n_msgs`; per-message latency
/// is elapsed / n_msgs, exactly the paper's methodology.
pub fn table1_cell(bufs: u32, msg_len: u32, n_msgs: u64) -> f64 {
    let mut v = VorxBuilder::single_cluster(2).trace(false).build();
    let p = SwParams {
        data_tag: 1,
        credit_tag: 2,
        msg_len,
        n_msgs,
        bufs,
    };
    v.spawn("n0:sw-sender", move |ctx| {
        sliding_window::sender(&ctx, NodeAddr(0), NodeAddr(1), p);
    });
    v.spawn("n1:sw-receiver", move |ctx| {
        sliding_window::receiver(&ctx, NodeAddr(1), NodeAddr(0), p);
    });
    let end = v.run_all();
    (end - SimTime::ZERO).as_us_f64() / n_msgs as f64
}

/// Table 2: channel (stop-and-wait) latency between two nodes, measured the
/// same way: the writer issues `n_msgs` writes; the reader consumes them.
pub fn table2_cell(msg_len: u32, n_msgs: u64) -> f64 {
    table2_cell_with(vorx::Calibration::paper_1988(), msg_len, n_msgs)
}

/// [`table2_cell`] under an arbitrary software cost model (ablations).
pub fn table2_cell_with(calib: vorx::Calibration, msg_len: u32, n_msgs: u64) -> f64 {
    let mut v = VorxBuilder::single_cluster(2)
        .calibration(calib)
        .trace(false)
        .build();
    v.spawn("n0:writer", move |ctx| {
        let ch = channel::open(&ctx, NodeAddr(0), "bench");
        for _ in 0..n_msgs {
            ch.write(&ctx, Payload::Synthetic(msg_len)).unwrap();
        }
    });
    v.spawn("n1:reader", move |ctx| {
        let ch = channel::open(&ctx, NodeAddr(1), "bench");
        for _ in 0..n_msgs {
            let m = ch.read(&ctx).unwrap();
            debug_assert_eq!(m.len(), msg_len);
        }
    });
    let end = v.run_all();
    (end - SimTime::ZERO).as_us_f64() / n_msgs as f64
}

/// §4 in-text: streaming 1024-byte channel messages reaches ~1027 kB/s.
/// Returns the measured throughput in kB/s.
pub fn channel_stream_kbps(n_msgs: u64) -> f64 {
    let per_msg_us = table2_cell(1024, n_msgs);
    1024.0 / per_msg_us * 1000.0 // bytes per ms = kB/s
}

// ---------------------------------------------------------------------------
// E-OPEN: channel-open scaling, centralized vs distributed object manager
// ---------------------------------------------------------------------------

/// `pairs` channel pairs open simultaneously at startup; returns the time
/// until the last open completes. `mode` selects the §3.2 architecture.
pub fn open_scaling(pairs: usize, mode: ObjMgrMode) -> SimDuration {
    let n = pairs * 2;
    let mut v = VorxBuilder::with_topology(vorx_apps::fft2d::topology_for(n))
        .objmgr(mode)
        .trace(false)
        .build();
    for i in 0..pairs {
        let (a, b) = (2 * i, 2 * i + 1);
        for node in [a, b] {
            v.spawn(format!("n{node}:open"), move |ctx| {
                let _ = channel::open(&ctx, NodeAddr(node as u32), &format!("startup-{i}"));
            });
        }
    }
    let end = v.run_all();
    end - SimTime::ZERO
}

/// Opens served per node, for the load-distribution part of E-OPEN.
pub fn open_scaling_served(pairs: usize, mode: ObjMgrMode) -> Vec<u64> {
    let n = pairs * 2;
    let mut v = VorxBuilder::with_topology(vorx_apps::fft2d::topology_for(n))
        .objmgr(mode)
        .trace(false)
        .build();
    for i in 0..pairs {
        for node in [2 * i, 2 * i + 1] {
            v.spawn(format!("n{node}:open"), move |ctx| {
                let _ = channel::open(&ctx, NodeAddr(node as u32), &format!("startup-{i}"));
            });
        }
    }
    v.run_all();
    let w = v.world();
    w.nodes.iter().map(|n| n.mgr.served).collect()
}

// ---------------------------------------------------------------------------
// E-CTX: §5 program-structuring techniques
// ---------------------------------------------------------------------------

/// The §5 alternatives for structuring message-driven computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Structuring {
    /// Input and compute subprocesses exchanging via semaphores: two full
    /// 80 µs context switches per message.
    Subprocess,
    /// Coroutines: switches "occur only at well defined places [...] so
    /// that most registers need not be saved".
    Coroutine,
    /// Interrupt-level / polled: "the entire computation is done by the
    /// interrupt service routines" — no switches at all.
    InterruptLevel,
}

/// Service `n_msgs` incoming 64-byte messages, each requiring `work_ns` of
/// computation, under the given structuring; returns the receiving node's
/// CPU time per message in µs (the structuring overhead the paper weighs).
pub fn ctx_structuring(technique: Structuring, n_msgs: u64, work_ns: u64) -> f64 {
    let mut v = VorxBuilder::single_cluster(2).trace(false).build();
    const TAG: u16 = 9;
    v.spawn("n0:driver", move |ctx| {
        // Pace the driver so the receiver's structuring dominates timing.
        for i in 0..n_msgs {
            udco::send(
                &ctx,
                NodeAddr(0),
                NodeAddr(1),
                TAG,
                i,
                Payload::Synthetic(64),
            );
            ctx.sleep(SimDuration::from_us(600));
        }
    });
    let start_work = move |ctx: &vorx::VCtx| {
        user_compute(ctx, NodeAddr(1), SimDuration::from_ns(work_ns));
    };
    match technique {
        Structuring::Subprocess => {
            v.spawn("n1:subproc", move |ctx| {
                udco::register(&ctx, NodeAddr(1), TAG, UdcoMode::Interrupt);
                let c = ctx.with(|w, _| w.calib);
                for _ in 0..n_msgs {
                    // The input subprocess is woken by the ISR (recv charges
                    // the resume switch); handing the message to the compute
                    // subprocess costs another full switch.
                    let _ = udco::recv(&ctx, NodeAddr(1), TAG);
                    vorx::api::compute_ns(&ctx, NodeAddr(1), CpuCat::System, c.ctx_switch_ns);
                    start_work(&ctx);
                }
            });
        }
        Structuring::Coroutine => {
            v.spawn("n1:coro", move |ctx| {
                udco::register(&ctx, NodeAddr(1), TAG, UdcoMode::Raw);
                for _ in 0..n_msgs {
                    let _ = udco::recv_raw_spin(&ctx, NodeAddr(1), TAG);
                    // Hand off input -> compute coroutine and back.
                    vorx::sched::coroutine_switch(&ctx, NodeAddr(1));
                    start_work(&ctx);
                    vorx::sched::coroutine_switch(&ctx, NodeAddr(1));
                }
            });
        }
        Structuring::InterruptLevel => {
            v.spawn("n1:isr", move |ctx| {
                udco::register(&ctx, NodeAddr(1), TAG, UdcoMode::Raw);
                for _ in 0..n_msgs {
                    let _ = udco::recv_raw_spin(&ctx, NodeAddr(1), TAG);
                    start_work(&ctx);
                }
            });
        }
    }
    v.run_all();
    let w = v.world();
    (w.nodes[1].cpu.busy().as_ns() as f64 / 1000.0) / n_msgs as f64
}

/// Directly measure the §5 context-switch cost through the subprocess
/// scheduler (one semaphore handoff = one switch). Returns µs.
pub fn measured_ctx_switch_us() -> f64 {
    let mut v = VorxBuilder::single_cluster(1).trace(false).build();
    v.spawn("setup", |ctx| {
        let node = NodeAddr(0);
        let sem = vorx::sched::create_sem(&ctx, node, 0);
        vorx::sched::spawn_subproc(&ctx, node, 2, "a", move |ctx, h| {
            for _ in 0..100 {
                h.sem_p(&ctx, sem);
            }
        });
        vorx::sched::spawn_subproc(&ctx, node, 1, "b", move |ctx, h| {
            for _ in 0..100 {
                h.sem_v(&ctx, sem);
            }
        });
    });
    v.run_all();
    let w = v.world();
    w.nodes[0].cpu.system_ns as f64 / 1000.0 / w.nodes[0].sched.switches as f64
}

// ---------------------------------------------------------------------------
// E-ALLOC: §3.1 allocation policies
// ---------------------------------------------------------------------------

/// Allocation discipline under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Meglos: allocate at run start, auto-free at run end.
    MeglosAutoFree,
    /// VORX: allocate the whole session up front, free at logout.
    VorxExplicit,
}

/// Two developers iterate edit/compile/run on a shared pool; returns the
/// number of "processors not available" failures each hits over `cycles`
/// development cycles.
pub fn alloc_race(policy: AllocPolicy, cycles: u32, seed: u64) -> [u32; 2] {
    let mut v = VorxBuilder::single_cluster(8).trace(false).build();
    let failures = std::sync::Arc::new(parking_lot::Mutex::new([0u32; 2]));
    for dev in 0..2u32 {
        let fail = std::sync::Arc::clone(&failures);
        v.spawn(format!("dev{dev}"), move |ctx| {
            let user = UserId(dev);
            let mut rng = SmallRng::seed_from_u64(seed ^ u64::from(dev));
            let want = 6; // each wants most of the 8-node pool
            if policy == AllocPolicy::VorxExplicit {
                // Allocate once for the whole session. The second developer
                // simply cannot start with this pool size - VORX makes the
                // conflict explicit and immediate instead of intermittent.
                let r = ctx.with(move |w, _| w.alloc.allocate(user, want));
                if r.is_err() {
                    fail.lock()[dev as usize] = 0; // explicit early failure, not a mid-session surprise
                    return;
                }
            }
            for _ in 0..cycles {
                // Edit + compile.
                ctx.sleep(SimDuration::from_ms(500 + rng.random_range(0..500)));
                // Run.
                if policy == AllocPolicy::MeglosAutoFree {
                    let got = ctx.with(move |w, _| w.alloc.allocate(user, want));
                    match got {
                        Ok(nodes) => {
                            ctx.sleep(SimDuration::from_ms(300 + rng.random_range(0..300)));
                            ctx.with(move |w, _| {
                                w.alloc.free(user, &nodes);
                            });
                        }
                        Err(_) => {
                            // "processors not available"
                            fail.lock()[dev as usize] += 1;
                            ctx.sleep(SimDuration::from_ms(200));
                        }
                    }
                } else {
                    // VORX: the session allocation is still held.
                    ctx.sleep(SimDuration::from_ms(300 + rng.random_range(0..300)));
                }
            }
            if policy == AllocPolicy::VorxExplicit {
                ctx.with(move |w, _| {
                    w.alloc.free_all(user);
                });
            }
        });
    }
    v.run_all();
    let f = failures.lock();
    *f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_4byte_lands_near_paper() {
        let us = table2_cell(4, 100);
        let paper = TABLE2_PAPER[0];
        assert!(
            (us - paper).abs() / paper < 0.15,
            "4-byte channel latency {us:.1}us vs paper {paper}us"
        );
    }

    #[test]
    fn table1_shape_holds() {
        // Monotone decreasing in buffer count; 2 buffers beat channels;
        // 1 buffer loses to channels.
        let k1 = table1_cell(1, 4, 200);
        let k2 = table1_cell(2, 4, 200);
        let k64 = table1_cell(64, 4, 200);
        assert!(k1 > k2 && k2 > k64);
        let chan = table2_cell(4, 200);
        assert!(
            k2 < chan,
            "2-buffer sliding window {k2:.1} must beat channels {chan:.1}"
        );
        assert!(
            k1 > chan,
            "1-buffer sliding window {k1:.1} must lose to channels {chan:.1}"
        );
    }

    #[test]
    fn channel_stream_near_1027_kbps() {
        let kbps = channel_stream_kbps(200);
        assert!(
            (900.0..1130.0).contains(&kbps),
            "channel stream {kbps:.0} kB/s vs paper 1027"
        );
    }

    #[test]
    fn distributed_objmgr_beats_centralized() {
        let central = open_scaling(8, ObjMgrMode::Centralized(NodeAddr(0)));
        let distrib = open_scaling(8, ObjMgrMode::Distributed);
        assert!(
            distrib < central,
            "distributed {distrib} should beat centralized {central}"
        );
        let served = open_scaling_served(8, ObjMgrMode::Distributed);
        assert!(
            served.iter().filter(|s| **s > 0).count() > 1,
            "distributed mode must spread the load: {served:?}"
        );
    }

    #[test]
    fn structuring_costs_ordered_as_paper_says() {
        let sp = ctx_structuring(Structuring::Subprocess, 20, 50_000);
        let co = ctx_structuring(Structuring::Coroutine, 20, 50_000);
        let il = ctx_structuring(Structuring::InterruptLevel, 20, 50_000);
        assert!(
            sp > co && co > il,
            "expected subprocess ({sp:.0}us) > coroutine ({co:.0}us) > interrupt-level ({il:.0}us)"
        );
        // Subprocesses pay ~2 x 80us more than interrupt level per message.
        assert!(
            sp - il > 120.0,
            "subprocess overhead {sp:.0} vs interrupt {il:.0}"
        );
    }

    #[test]
    fn measured_switch_is_80us() {
        let us = measured_ctx_switch_us();
        assert!((us - 80.0).abs() < 1.0, "measured {us:.1}us");
    }

    #[test]
    fn meglos_policy_produces_not_available_failures() {
        let meglos = alloc_race(AllocPolicy::MeglosAutoFree, 20, 42);
        let vorx = alloc_race(AllocPolicy::VorxExplicit, 20, 42);
        assert!(
            meglos[0] + meglos[1] > 0,
            "the §3.1 race should bite under auto-free: {meglos:?}"
        );
        assert_eq!(
            vorx,
            [0, 0],
            "explicit allocation has no mid-session failures"
        );
    }
}

// ---------------------------------------------------------------------------
// E-SHARE: §3.1 — why programmers demanded exclusive access
// ---------------------------------------------------------------------------

/// Run a 4-worker balanced computation, optionally with another user's
/// process sharing one of the nodes. Returns `(makespan_us, max_worker_us -
/// min_worker_us)` — the §3.1 complaint is that sharing destroys the
/// repeatable balance.
pub fn shared_vs_exclusive(interferer: bool) -> (f64, f64) {
    let mut v = VorxBuilder::single_cluster(5).trace(false).build();
    let spans = std::sync::Arc::new(parking_lot::Mutex::new(vec![0u64; 4]));
    for wk in 0..4usize {
        let spans = std::sync::Arc::clone(&spans);
        v.spawn(format!("n{wk}:worker"), move |ctx| {
            let t0 = ctx.now();
            for _ in 0..10 {
                user_compute(&ctx, NodeAddr(wk as u32), SimDuration::from_ms(1));
            }
            spans.lock()[wk] = (ctx.now() - t0).as_ns();
        });
    }
    if interferer {
        // Somebody else's process time-shares node 0 (the Meglos default).
        v.spawn("n0:other-user", |ctx| {
            for _ in 0..10 {
                user_compute(&ctx, NodeAddr(0), SimDuration::from_ms(1));
                ctx.sleep(SimDuration::from_us(100));
            }
        });
    }
    let end = v.run_all();
    let spans = spans.lock();
    let max = *spans.iter().max().unwrap() as f64 / 1000.0;
    let min = *spans.iter().min().unwrap() as f64 / 1000.0;
    ((end - desim::SimTime::ZERO).as_us_f64(), max - min)
}

#[cfg(test)]
mod share_tests {
    use super::*;

    #[test]
    fn sharing_destroys_load_balance() {
        let (excl_make, excl_skew) = shared_vs_exclusive(false);
        let (shared_make, shared_skew) = shared_vs_exclusive(true);
        // Exclusive: perfectly balanced and repeatable.
        assert!(excl_skew < 1.0, "exclusive skew {excl_skew}us");
        // Shared: the interfered worker lags far behind its siblings.
        assert!(
            shared_skew > 5_000.0,
            "sharing should skew the balance, got {shared_skew}us"
        );
        assert!(shared_make > excl_make);
    }
}
