//! Assemble `BENCH_engine.json` from the engine benchmark results.
//!
//! Reads the per-bench JSON files the criterion harness drops under
//! `target/criterion-stub/desim/` (run `cargo bench -p vorx-bench --bench
//! engine` first) and writes a before/after report at the workspace root.
//!
//! Usage:
//!   engine_report                      # refresh "after", keep "before"
//!   engine_report --set-baseline       # record current results as "before"
//!   engine_report --baseline-dir DIR   # read "before" numbers from DIR
//!
//! The "before" section is preserved across runs so the perf trajectory of
//! the engine is tracked from PR to PR.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

#[derive(Debug, Clone, Copy)]
struct Stats {
    min_ns: f64,
    median_ns: f64,
    mean_ns: f64,
}

/// Extract a numeric field from a flat JSON object by key.
fn field_f64(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let i = json.find(&pat)? + pat.len();
    let rest = json[i..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse_stats(json: &str) -> Option<Stats> {
    Some(Stats {
        min_ns: field_f64(json, "min_ns")?,
        median_ns: field_f64(json, "median_ns")?,
        mean_ns: field_f64(json, "mean_ns")?,
    })
}

/// Read every `<bench>.json` in `dir` into a name → stats map.
fn read_dir_stats(dir: &Path) -> BTreeMap<String, Stats> {
    let mut out = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.extension().is_none_or(|x| x != "json") {
            continue;
        }
        let Some(name) = p.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        if let Some(st) = std::fs::read_to_string(&p)
            .ok()
            .as_deref()
            .and_then(parse_stats)
        {
            out.insert(name.to_string(), st);
        }
    }
    out
}

/// Pull the `"before"` object out of an existing report (naive but
/// sufficient: the report is machine-written with known nesting).
fn read_existing_before(report: &Path) -> BTreeMap<String, Stats> {
    let mut out = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(report) else {
        return out;
    };
    let Some(start) = text.find("\"before\":") else {
        return out;
    };
    let body = &text[start..];
    let Some(open) = body.find('{') else {
        return out;
    };
    let mut depth = 0usize;
    let mut end = open;
    for (i, c) in body[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = open + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let obj = &body[open..=end];
    // Each bench is `"name":{...}` one level down.
    let mut rest = &obj[1..];
    while let Some(q) = rest.find('"') {
        let after = &rest[q + 1..];
        let Some(q2) = after.find('"') else { break };
        let name = &after[..q2];
        let Some(ob) = after.find('{') else { break };
        let Some(cb) = after[ob..].find('}') else {
            break;
        };
        if let Some(st) = parse_stats(&after[ob..=ob + cb]) {
            out.insert(name.to_string(), st);
        }
        rest = &after[ob + cb..];
    }
    out
}

fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}

fn emit_section(out: &mut String, name: &str, stats: &BTreeMap<String, Stats>) {
    out.push_str(&format!("  \"{name}\": {{\n"));
    let n = stats.len();
    for (i, (bench, st)) in stats.iter().enumerate() {
        out.push_str(&format!(
            "    \"{bench}\": {{\"min_ns\": {:.1}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}}}{}\n",
            st.min_ns,
            st.median_ns,
            st.mean_ns,
            if i + 1 < n { "," } else { "" }
        ));
    }
    out.push_str("  }");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let set_baseline = args.iter().any(|a| a == "--set-baseline");
    let baseline_dir = args
        .iter()
        .position(|a| a == "--baseline-dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);

    let root = workspace_root();
    let results_dir = root.join("target/criterion-stub/desim");
    let report_path = root.join("BENCH_engine.json");

    let after = read_dir_stats(&results_dir);
    if after.is_empty() {
        eprintln!(
            "no results under {}; run `cargo bench -p vorx-bench --bench engine` first",
            results_dir.display()
        );
        std::process::exit(1);
    }

    let before = if set_baseline {
        after.clone()
    } else if let Some(dir) = baseline_dir {
        read_dir_stats(&dir)
    } else {
        read_existing_before(&report_path)
    };

    let mut out = String::from("{\n");
    out.push_str(
        "  \"note\": \"desim engine hot-path benches, ns of host wall time; \
         measured with the vendored criterion stand-in (vendor/README.md), so \
         only before/after ratios are comparable, not absolute numbers from \
         real criterion\",\n",
    );
    emit_section(&mut out, "before", &before);
    out.push_str(",\n");
    emit_section(&mut out, "after", &after);
    if !before.is_empty() {
        out.push_str(",\n  \"speedup_median\": {\n");
        let common: Vec<_> = after
            .iter()
            .filter_map(|(k, a)| before.get(k).map(|b| (k, b.median_ns / a.median_ns)))
            .collect();
        for (i, (k, s)) in common.iter().enumerate() {
            out.push_str(&format!(
                "    \"{k}\": {s:.2}{}\n",
                if i + 1 < common.len() { "," } else { "" }
            ));
        }
        out.push_str("  }");
    }
    out.push_str("\n}\n");

    std::fs::write(&report_path, &out).expect("write BENCH_engine.json");
    println!("wrote {}", report_path.display());
    print!("{out}");
}
