//! Million-endpoint scale campaign: hierarchical worlds from 1k to 1M
//! endpoints under the sharded engine, with link churn, streaming
//! workloads, and the O(1)-idle/implicit-routing claims measured rather
//! than asserted in the abstract.
//!
//! Each scale point builds a hierarchical incomplete hypercube
//! ([`Topology::hierarchical_hypercube`]), shards it into 8 contiguous
//! cluster groups (`VorxBuilder::shards`), and drives the same bounded
//! streaming workload (windows of writer/reader pairs spawned as sim time
//! advances — never materialized at build) while two cluster cables flap.
//! Per cell it records:
//!
//! * events/sec (engine activities dispatched / wall time),
//! * bytes/endpoint (per-shard memory accountant total / endpoints, max
//!   over shards) and the count of endpoints still at the idle baseline,
//! * route-overlay size: detour entries sampled mid-flap on the shard
//!   owning the churned edge, and the final size (must be 0 — heal is an
//!   overlay clear),
//! * merged-trace bit-identity between workers 1 and 4 at a fixed shard
//!   count — the determinism gate at every scale.
//!
//! Alongside the sweep it times `Topology::recompute` after a single edge
//! death against the pre-overlay dense all-destinations BFS
//! (`dense_bfs_into`) on the same churned topology and asserts the implicit
//! representation is ≥ 100× faster at the 100k point (10k in smoke).
//!
//! Writes `BENCH_scale.json` at the workspace root.
//!
//! Usage:
//!   scale_campaign            # full sweep {1k, 10k, 100k, 1M} + JSON
//!   scale_campaign --smoke    # 10k only, under a wall-clock watchdog (CI)

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use desim::{FaultSchedule, SimDuration, SimTime};
use vorx::hpcnet::{
    Attachment, ClusterId, Fabric, NetConfig, NodeAddr, PortRef, Topology, PORTS_PER_CLUSTER,
};
use vorx::{accounting, Calibration, VCtx, VorxBuilder, VorxShardedSim};
use vorx_bench::workload::StreamingWorkload;

/// Shard count, fixed across every scale point and worker count: the shard
/// partition is part of the simulated outcome, so holding it constant is
/// what makes the workers-{1,4} trace comparison meaningful.
const SHARDS: usize = 8;
/// Campaign seed.
const SEED: u64 = 0x5CA1E;
/// First cable flap (down, up), ns.
const FLAP_A_NS: (u64, u64) = (1_500_000, 2_500_000);
/// Second cable flap (down, up), ns — a different group, later window.
const FLAP_B_NS: (u64, u64) = (2_000_000, 3_000_000);

/// One scale point of the sweep.
struct ScaleCfg {
    name: &'static str,
    levels: &'static [usize],
    eps: usize,
}

const SCALES: [ScaleCfg; 4] = [
    ScaleCfg {
        name: "1k",
        levels: &[8, 16],
        eps: 8,
    },
    ScaleCfg {
        name: "10k",
        levels: &[8, 16, 10],
        eps: 8,
    },
    ScaleCfg {
        name: "100k",
        levels: &[64, 20, 20],
        eps: 4,
    },
    ScaleCfg {
        name: "1M",
        levels: &[64, 64, 62],
        eps: 4,
    },
];

impl ScaleCfg {
    fn topo(&self) -> Topology {
        Topology::hierarchical_hypercube(self.levels, self.eps).expect("valid hierarchy")
    }

    /// The shared streaming workload: constant offered load at every scale
    /// — the scale axis is the *world*, and events/sec shows what the idle
    /// fraction costs.
    fn workload(&self) -> StreamingWorkload {
        StreamingWorkload {
            seed: SEED,
            windows: 4,
            streams_per_window: 16,
            msgs_per_stream: 4,
            window_ns: 1_000_000,
            pace_ns: 50_000,
            payload_len: 256,
        }
    }
}

/// The first wired cluster-to-cluster neighbor out of `c`.
fn neighbor_of(t: &Topology, c: ClusterId) -> ClusterId {
    for port in 0..PORTS_PER_CLUSTER as u8 {
        if let Attachment::Cluster(peer) = t.attachment(PortRef { cluster: c, port }) {
            return peer.cluster;
        }
    }
    panic!("cluster {} has no cluster links", c.0);
}

/// Both directed link ids of the cable `a`–`b`, plus the clusters, from a
/// throwaway probe fabric (link ids are a function of the topology alone).
fn cable(f: &Fabric, a: ClusterId, b: ClusterId) -> [u32; 2] {
    [
        f.cluster_link(a, b).expect("wired").0,
        f.cluster_link(b, a).expect("wired").0,
    ]
}

/// The churn script: two cluster cables flap, in different groups, timed so
/// the overlay exists while streams are in flight. Pure function of the
/// topology, identical for every worker count.
struct Churn {
    schedule: FaultSchedule,
    /// A cluster whose routing tables the first flap rewrites (the dead
    /// edge's own cluster) — where the overlay monitor lives.
    watch: ClusterId,
}

fn churn(t: &Topology) -> Churn {
    let probe = Fabric::new(t.clone(), NetConfig::paper_1988());
    let a0 = ClusterId(0);
    let a1 = neighbor_of(t, a0);
    let b0 = ClusterId(t.n_clusters() as u32 - 1);
    let b1 = neighbor_of(t, b0);
    let mut s = FaultSchedule::new(SEED);
    for l in cable(&probe, a0, a1) {
        s = s
            .link_down_at(l, SimTime::from_ns(FLAP_A_NS.0))
            .link_up_at(l, SimTime::from_ns(FLAP_A_NS.1));
    }
    for l in cable(&probe, b0, b1) {
        s = s
            .link_down_at(l, SimTime::from_ns(FLAP_B_NS.0))
            .link_up_at(l, SimTime::from_ns(FLAP_B_NS.1));
    }
    Churn {
        schedule: s,
        watch: a0,
    }
}

/// Everything one `(scale, workers)` run produced.
struct RunOutcome {
    trace: String,
    end_ns: u64,
    wall_s: f64,
    events: u64,
    delivered: u64,
    bytes_per_endpoint: u64,
    mem_max_node: u64,
    idle_nodes: usize,
    overlay_mid_flap: u64,
    overlay_final: usize,
    rerouted: u64,
    flaps: u64,
}

fn run_once(cfg: &ScaleCfg, workers: usize, ch: &Churn) -> RunOutcome {
    let t = cfg.topo();
    let n = t.n_endpoints() as u32;
    let v: VorxShardedSim = VorxBuilder::with_topology(t)
        .seed(SEED)
        .shards(SHARDS)
        // The partition-detection sweep is O(endpoints²) per link death;
        // at these scales the campaign relies on retransmission riding out
        // the short flaps instead.
        .calibration(Calibration {
            partition_detect_ns: u64::MAX,
            ..Calibration::paper_1988()
        })
        .faults(ch.schedule.clone())
        .build_sharded(workers);
    let mut v = v;

    let delivered = Arc::new(AtomicU64::new(0));
    cfg.workload().install(&v, n, &delivered);

    // Overlay monitor: on the shard that owns the first churned edge,
    // sample the detour-overlay size while the cable is down. Reads only —
    // it cannot perturb the simulated outcome.
    let overlay_mid = Arc::new(AtomicU64::new(0));
    let om = Arc::clone(&overlay_mid);
    let watch_node = NodeAddr(ch.watch.0 * cfg.eps as u32);
    v.spawn_at(watch_node, "overlay-monitor", move |ctx: VCtx| {
        ctx.sleep(SimDuration::from_ns((FLAP_A_NS.0 + FLAP_A_NS.1) / 2));
        let len = ctx.with(|w, _| w.net.topology().overlay_len() as u64);
        om.fetch_max(len, Ordering::Relaxed);
    });

    let wall = Instant::now();
    let end = v.run_all();
    let wall_s = wall.elapsed().as_secs_f64();
    let trace = v.merged_trace().to_json();
    let events: u64 = v.stats().events_per_shard.iter().sum();

    let (mut bpe, mut mem_max, mut idle, mut overlay_final, mut rerouted) = (0, 0, 0usize, 0, 0);
    let mut flaps = 0u64;
    for k in 0..v.n_shards() {
        let w = v.world(k);
        let (mx, total, id) = accounting::world_mem_report(&w);
        // Each shard replicates the compact slot index; the honest
        // per-endpoint figure is each replica's own total over n.
        bpe = bpe.max(total / u64::from(n));
        mem_max = mem_max.max(mx);
        idle = idle.max(id);
        overlay_final = overlay_final.max(w.net.topology().overlay_len());
        rerouted += w.net.stats.frames_rerouted;
        flaps += w.link_fault_stats().values().map(|s| s.flaps).sum::<u64>();
    }
    RunOutcome {
        trace,
        end_ns: end.as_ns(),
        wall_s,
        events,
        delivered: delivered.load(Ordering::Relaxed),
        bytes_per_endpoint: bpe,
        mem_max_node: mem_max,
        idle_nodes: idle,
        overlay_mid_flap: overlay_mid.load(Ordering::Relaxed),
        overlay_final,
        rerouted,
        flaps,
    }
}

/// One campaign cell: the same scale at workers 1 and 4, traces compared.
struct CellResult {
    name: &'static str,
    endpoints: u32,
    clusters: usize,
    trace_identical: bool,
    run1: RunOutcome,
    run4_wall_s: f64,
    run4_events: u64,
}

fn run_cell(cfg: &ScaleCfg) -> CellResult {
    let t = cfg.topo();
    let (n, clusters) = (t.n_endpoints() as u32, t.n_clusters());
    let ch = churn(&t);
    drop(t);
    let r1 = run_once(cfg, 1, &ch);
    let r4 = run_once(cfg, 4, &ch);
    let expected = cfg.workload().expected_messages();
    assert_eq!(r1.delivered, expected, "{}: lost messages", cfg.name);
    assert_eq!(
        r1.overlay_final, 0,
        "{}: heal must clear the overlay",
        cfg.name
    );
    assert!(
        r1.overlay_mid_flap > 0,
        "{}: flap installed no detours — churn never exercised the overlay",
        cfg.name
    );
    CellResult {
        name: cfg.name,
        endpoints: n,
        clusters,
        trace_identical: r1.trace == r4.trace && r1.end_ns == r4.end_ns,
        run1: r1,
        run4_wall_s: r4.wall_s,
        run4_events: r4.events,
    }
}

/// Time `recompute` after a single edge death on the implicit hierarchical
/// representation against the dense all-destinations BFS it replaced.
/// Returns `(overlay_ns, dense_ns, speedup)`.
fn recompute_speedup(cfg: &ScaleCfg) -> (u64, u64, f64) {
    let mut t = cfg.topo();
    let edge = PortRef {
        cluster: ClusterId(0),
        port: 0,
    };
    // Warm the overlay scratch, then take the median of 5 churn recomputes.
    t.set_edge_state(edge, false);
    t.recompute();
    t.set_edge_state(edge, true);
    t.recompute();
    let mut samples = Vec::new();
    for _ in 0..5 {
        t.set_edge_state(edge, false);
        let c = Instant::now();
        t.recompute();
        samples.push(c.elapsed().as_nanos() as u64);
        t.set_edge_state(edge, true);
        t.recompute();
    }
    samples.sort_unstable();
    let overlay_ns = samples[2].max(1);

    // The dense baseline, on the same churned topology, once.
    t.set_edge_state(edge, false);
    let mut table = Vec::new();
    let c = Instant::now();
    t.dense_bfs_into(&mut table);
    let dense_ns = c.elapsed().as_nanos() as u64;
    (overlay_ns, dense_ns, dense_ns as f64 / overlay_ns as f64)
}

fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}

/// Hand-rolled JSON, same convention as the other BENCH_*.json reports.
fn to_json(host_cpus: usize, cells: &[CellResult], speedup: &(u64, u64, f64)) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"note\": \"scale campaign: hierarchical worlds 1k..1M endpoints, sharded engine \
         (8 shards), streaming workload, two cable flaps, workers {1,4}; events/sec figures \
         are wall-clock and only comparable on similar host hardware (host_cpus = effective \
         CPU affinity mask)\",\n",
    );
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str(&format!(
        "  \"recompute_100k\": {{ \"overlay_ns\": {}, \"dense_bfs_ns\": {}, \
         \"speedup\": {:.0} }},\n",
        speedup.0, speedup.1, speedup.2
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.run1;
        out.push_str(&format!(
            "    {{ \"scale\": \"{}\", \"endpoints\": {}, \"clusters\": {}, \"shards\": {}, \
             \"end_ns\": {}, \"delivered\": {}, \"trace_identical_workers_1_4\": {}, \
             \"events\": {}, \"events_per_sec_w1\": {:.0}, \"events_per_sec_w4\": {:.0}, \
             \"bytes_per_endpoint\": {}, \"mem_max_node_bytes\": {}, \"idle_nodes\": {}, \
             \"overlay_mid_flap\": {}, \"overlay_final\": {}, \"frames_rerouted\": {} }}{}\n",
            c.name,
            c.endpoints,
            c.clusters,
            SHARDS,
            r.end_ns,
            r.delivered,
            c.trace_identical,
            r.events,
            r.events as f64 / r.wall_s.max(1e-9),
            c.run4_events as f64 / c.run4_wall_s.max(1e-9),
            r.bytes_per_endpoint,
            r.mem_max_node,
            r.idle_nodes,
            r.overlay_mid_flap,
            r.overlay_final,
            r.rerouted,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Wall-clock watchdog: abort loudly instead of hanging CI.
fn with_watchdog<T>(secs: u64, f: impl FnOnce() -> T) -> T {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    std::thread::spawn(move || {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(secs);
        while std::time::Instant::now() < deadline {
            if flag.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        eprintln!("scale campaign: watchdog expired after {secs}s — the run hung");
        std::process::abort();
    });
    let r = f();
    done.store(true, Ordering::Relaxed);
    r
}

fn print_cell(c: &CellResult) {
    let r = &c.run1;
    println!(
        "{:>4}: {:>9} endpoints / {:>6} clusters, end {:.2} ms, {} delivered, \
         {} events ({:.0}/s w1, {:.0}/s w4), {} B/endpoint, {} idle, \
         overlay mid/final {}/{}, rerouted {}, flaps {}, workers-identical={}",
        c.name,
        c.endpoints,
        c.clusters,
        r.end_ns as f64 / 1e6,
        r.delivered,
        r.events,
        r.events as f64 / r.wall_s.max(1e-9),
        c.run4_events as f64 / c.run4_wall_s.max(1e-9),
        r.bytes_per_endpoint,
        r.idle_nodes,
        r.overlay_mid_flap,
        r.overlay_final,
        r.rerouted,
        r.flaps,
        c.trace_identical,
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        // The 10k point: big enough that an O(endpoints) sweep anywhere on
        // the hot path would blow the watchdog, small enough for CI.
        let cfg = &SCALES[1];
        let (cell, sp) = with_watchdog(300, || (run_cell(cfg), recompute_speedup(cfg)));
        print_cell(&cell);
        println!(
            "recompute after churn: overlay {} ns vs dense BFS {} ns ({:.0}x)",
            sp.0, sp.1, sp.2
        );
        assert!(cell.trace_identical, "smoke: workers 1 vs 4 traces differ");
        assert!(
            sp.2 >= 100.0,
            "smoke: overlay recompute only {:.1}x faster than dense BFS",
            sp.2
        );
        println!(
            "scale-campaign smoke OK: traces bit-identical, recompute {:.0}x",
            sp.2
        );
        return;
    }

    let mut cells = Vec::new();
    for cfg in &SCALES {
        cells.push(with_watchdog(3600, || run_cell(cfg)));
        print_cell(cells.last().expect("just pushed"));
    }
    // The headline acceptance number: implicit recompute vs dense BFS at
    // the 100k point.
    let sp = recompute_speedup(&SCALES[2]);
    println!(
        "recompute after churn at 100k: overlay {} ns vs dense BFS {} ns ({:.0}x)",
        sp.0, sp.1, sp.2
    );
    assert!(
        sp.2 >= 100.0,
        "overlay recompute only {:.1}x faster than dense BFS at 100k",
        sp.2
    );
    let bad: usize = cells.iter().filter(|c| !c.trace_identical).count();
    assert_eq!(bad, 0, "{bad} scale points broke worker determinism");

    let host_cpus = desim::affinity::effective_parallelism();
    let root = workspace_root();
    let path = root.join("BENCH_scale.json");
    std::fs::write(&path, to_json(host_cpus, &cells, &sp)).expect("write BENCH_scale.json");
    println!("wrote {}", path.display());
}
