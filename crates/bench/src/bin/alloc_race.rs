//! E-ALLOC — §3.1 processor allocation: the "processors not available"
//! race under the Meglos auto-free policy vs VORX explicit allocation.
//!
//! "It often happened that while a programmer was recompiling, somebody
//! else would start their application on the remaining processors with
//! exclusive access, so that when the programmer tried to run the modified
//! program, he would receive the diagnostic, 'processors not available.'"

use vorx_bench::{alloc_race, AllocPolicy};

fn main() {
    println!("== E-ALLOC: two developers, 8-node pool, 30 edit/compile/run cycles ==\n");
    let mut total_meglos = 0u32;
    println!(
        "{:<10} {:>22} {:>22}",
        "seed", "Meglos failures (a,b)", "VORX failures (a,b)"
    );
    for seed in [1u64, 2, 3, 4, 5] {
        let m = alloc_race(AllocPolicy::MeglosAutoFree, 30, seed);
        let v = alloc_race(AllocPolicy::VorxExplicit, 30, seed);
        total_meglos += m[0] + m[1];
        println!(
            "{:<10} {:>12},{:<9} {:>12},{:<9}",
            seed, m[0], m[1], v[0], v[1]
        );
    }
    println!(
        "\nMeglos auto-free policy: {total_meglos} 'processors not available' diagnostics across 5 sessions."
    );
    println!(
        "VORX explicit allocation: 0 mid-session failures (conflicts surface once, up front)."
    );
}
