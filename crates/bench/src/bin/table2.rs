//! T2 — Table 2: "Message Latency for Channel Communications" (the
//! stop-and-wait kernel protocol), plus the §4 in-text claim that streaming
//! 1024-byte channel messages reaches 1027 kbyte/sec.

use vorx_bench::report::{render, Row};
use vorx_bench::{channel_stream_kbps, table2_cell, TABLE2_PAPER, TABLE_SIZES};

fn main() {
    let n = 1000;
    let mut rows = Vec::new();
    for (i, &len) in TABLE_SIZES.iter().enumerate() {
        rows.push(Row::new(
            format!("{len:>4}B messages"),
            Some(TABLE2_PAPER[i]),
            table2_cell(len, n),
            "us/msg",
        ));
    }
    print!(
        "{}",
        render("Table 2: channel latency (stop-and-wait)", &rows)
    );

    let thru = Row::new(
        "1024B channel stream",
        Some(1027.0),
        channel_stream_kbps(n),
        "kB/s",
    );
    print!(
        "{}",
        render("E-THRU: channel streaming throughput (§4)", &[thru])
    );
}
