//! Windowed data-path report: sweep channel window size × message size ×
//! loss rate and measure goodput through the credit-based pipeline, plus
//! the zero-copy accounting (physical payload bytes copied, buffer-pool
//! recycling).
//!
//! A 2-node cluster streams a fixed message count from node 0 to node 1.
//! `chan_window = 1` is the paper's §5 stop-and-wait protocol bit-for-bit;
//! larger windows enable the credit-based pipeline. The paper's Table 1
//! shows sliding-window transfer roughly doubling goodput over
//! stop-and-wait (164 µs vs 303 µs per 4-byte message); this report
//! reproduces that ordering inside the simulation, for channels.
//!
//! Writes `BENCH_datapath.json` at the workspace root.
//!
//! Usage:
//!   datapath_report           # full sweep + BENCH_datapath.json
//!   datapath_report --smoke   # one comparison, assert windowed >= 2x (CI)

use std::path::PathBuf;
use std::sync::Arc;

use desim::{FaultSchedule, LinkFaults};
use parking_lot::Mutex;
use vorx::channel;
use vorx::hpcnet::{copymeter, NodeAddr, Payload};
use vorx::objmgr::ObjMgrMode;
use vorx::{Calibration, VorxBuilder};
use vorx_bench::report::{render, Row};

/// Messages per cell (enough to amortize rendezvous and reach steady state).
const MSGS: u32 = 64;

/// Paper Table 2: one 4-byte channel write cycle, stop-and-wait, ≈ 303 µs.
const PAPER_SW_4B_US: f64 = 303.0;
/// Paper Table 1: sliding-window UDCO asymptote for 4-byte messages with 64
/// buffers, ≈ 164 µs.
const PAPER_WIN_4B_US: f64 = 164.0;

/// One sweep cell's outcome.
struct Cell {
    window: u32,
    msg_bytes: usize,
    loss: f64,
    seed: u64,
    completed: bool,
    elapsed_ns: u64,
    per_msg_us: f64,
    goodput_kbps: f64,
    retransmits: u64,
    dups_suppressed: u64,
    payload_bytes_copied: u64,
    pool_hits: u64,
    pool_misses: u64,
    pool_recycled: u64,
    leaked: usize,
    /// Per-link injection counters, links with any activity only.
    link_faults: Vec<(u32, desim::LinkStats)>,
    /// Max port-link occupancy high-water mark (slots).
    depth_hwm: usize,
    /// Max per-switch sheddable-byte high-water mark.
    bytes_hwm: u64,
}

/// Stream `MSGS` messages of `msg_bytes` from node 0 to node 1 with the
/// given window, under `loss` on every link. Elapsed time runs from the
/// writer's first write to the reader's last delivery, so rendezvous cost
/// stays out of the per-message figure.
fn run_cell(window: u32, msg_bytes: usize, loss: f64, seed: u64) -> Cell {
    let mut schedule = FaultSchedule::new(seed);
    if loss > 0.0 {
        schedule = schedule.all_links(LinkFaults::loss(loss));
    }
    let mut v = VorxBuilder::single_cluster(2)
        .objmgr(ObjMgrMode::Centralized(NodeAddr(0)))
        .calibration(Calibration::paper_1988_windowed(window))
        .trace(false)
        .faults(schedule)
        .build();

    copymeter::reset();
    let span = Arc::new(Mutex::new((0u64, 0u64)));
    let span_w = Arc::clone(&span);
    v.spawn("n0:writer", move |ctx| {
        let ch = channel::open(&ctx, NodeAddr(0), "dp");
        span_w.lock().0 = ctx.now().as_ns();
        for i in 0..MSGS {
            let mut buf = vec![0u8; msg_bytes.max(4)];
            buf[..4].copy_from_slice(&i.to_le_bytes());
            ch.write(&ctx, Payload::copy_from(&buf)).unwrap();
        }
        ch.close(&ctx); // flushes the window in pipelined mode
    });
    let got = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&got);
    let span_r = Arc::clone(&span);
    v.spawn("n1:reader", move |ctx| {
        let ch = channel::open(&ctx, NodeAddr(1), "dp");
        for _ in 0..MSGS {
            let p = ch.read(&ctx).unwrap();
            sink.lock().push(u32::from_le_bytes(
                p.bytes().unwrap()[..4].try_into().unwrap(),
            ));
        }
        span_r.lock().1 = ctx.now().as_ns();
    });
    let report = v.run();
    let leaked = report.parked.len();
    let (t0, t1) = *span.lock();
    let elapsed_ns = t1.saturating_sub(t0);
    let order = got.lock().clone();
    let completed = order == (0..MSGS).collect::<Vec<_>>() && leaked == 0 && elapsed_ns > 0;
    let w = v.world();
    let (pool_hits, pool_misses, pool_recycled) = w.payload_pool.stats();
    let link_faults: Vec<(u32, desim::LinkStats)> = w
        .link_fault_stats()
        .iter()
        .filter(|(_, s)| **s != desim::LinkStats::default())
        .map(|(l, s)| (*l, *s))
        .collect();
    let secs = elapsed_ns as f64 / 1e9;
    Cell {
        window,
        msg_bytes,
        loss,
        seed,
        completed,
        elapsed_ns,
        per_msg_us: elapsed_ns as f64 / 1e3 / f64::from(MSGS),
        goodput_kbps: if secs > 0.0 {
            (u64::from(MSGS) * msg_bytes as u64) as f64 / 1e3 / secs
        } else {
            0.0
        },
        retransmits: w.faults.stats.retransmits,
        dups_suppressed: w.faults.stats.dups_suppressed,
        payload_bytes_copied: copymeter::payload_bytes_copied(),
        pool_hits,
        pool_misses,
        pool_recycled,
        leaked,
        link_faults,
        depth_hwm: w.net.max_port_link_depth_hwm(),
        bytes_hwm: w.net.max_cluster_data_bytes_hwm(),
    }
}

/// Walk up from cwd until the directory holding `Cargo.lock`.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}

/// Hand-rolled JSON, same convention as the other BENCH_*.json reports.
fn to_json(cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"note\": \"windowed channel data path: window x message size x loss sweep, \
         writer n0 -> reader n1; window 1 = paper stop-and-wait\",\n",
    );
    out.push_str(&format!(
        "  \"paper\": {{ \"table2_stop_and_wait_4B_us\": {PAPER_SW_4B_US}, \
         \"table1_sliding_window_4B_us\": {PAPER_WIN_4B_US} }},\n"
    ));
    out.push_str(&format!("  \"messages_per_cell\": {MSGS},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"window\": {}, \"msg_bytes\": {}, \"loss\": {:.2}, \"seed\": {}, \
             \"completed\": {}, \"elapsed_ns\": {}, \"per_msg_us\": {:.1}, \
             \"goodput_kbps\": {:.1}, \"retransmits\": {}, \"dups_suppressed\": {}, \
             \"payload_bytes_copied\": {}, \"pool_hits\": {}, \"pool_misses\": {}, \
             \"pool_recycled\": {}, \"leaked_waiters\": {} }}{}\n",
            c.window,
            c.msg_bytes,
            c.loss,
            c.seed,
            c.completed,
            c.elapsed_ns,
            c.per_msg_us,
            c.goodput_kbps,
            c.retransmits,
            c.dups_suppressed,
            c.payload_bytes_copied,
            c.pool_hits,
            c.pool_misses,
            c.pool_recycled,
            c.leaked,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        // CI gate: the acceptance ratio from the issue — windowed (W=8)
        // goodput at least 2x stop-and-wait for 256-byte messages on a
        // clean network — plus zero payload copies on the single-fragment
        // path.
        let sw = run_cell(1, 256, 0.0, 0xDA7A);
        let win = run_cell(8, 256, 0.0, 0xDA7A);
        assert!(sw.completed, "smoke: stop-and-wait cell failed");
        assert!(win.completed, "smoke: windowed cell failed");
        assert!(
            win.goodput_kbps >= 2.0 * sw.goodput_kbps,
            "smoke: windowed goodput {:.1} KB/s < 2x stop-and-wait {:.1} KB/s",
            win.goodput_kbps,
            sw.goodput_kbps
        );
        // The only metered copies are the writer materializing each message
        // (`Payload::copy_from`); fabric forwarding, reassembly of
        // single-fragment messages, and read() move zero payload bytes.
        let construction = u64::from(MSGS) * 256;
        assert_eq!(
            win.payload_bytes_copied, construction,
            "smoke: data path must copy zero payload bytes past construction"
        );
        println!(
            "datapath smoke OK: W=8 {:.1} KB/s vs W=1 {:.1} KB/s ({:.2}x), 0 payload bytes copied past construction",
            win.goodput_kbps,
            sw.goodput_kbps,
            win.goodput_kbps / sw.goodput_kbps
        );
        return;
    }

    let windows = [1u32, 2, 4, 8, 16, 32];
    let sizes = [4usize, 256, 1024, 4096];
    let losses = [0.0, 0.01, 0.05];
    let mut cells = Vec::new();
    for &window in &windows {
        for &size in &sizes {
            for &loss in &losses {
                let seed = 0xDA7A ^ (u64::from(window) << 24) ^ ((size as u64) << 8);
                cells.push(run_cell(window, size, loss, seed));
            }
        }
    }

    // Console summary: the 0%-loss column across windows, per size.
    for &size in &sizes {
        let rows: Vec<Row> = cells
            .iter()
            .filter(|c| c.msg_bytes == size && c.loss == 0.0)
            .map(|c| {
                let paper = if size == 4 && c.window == 1 {
                    Some(PAPER_SW_4B_US)
                } else if size == 4 && c.window == 32 {
                    Some(PAPER_WIN_4B_US)
                } else {
                    None
                };
                Row::new(
                    format!("window {:>2}", c.window),
                    paper,
                    c.per_msg_us,
                    "us/msg",
                )
            })
            .collect();
        print!(
            "{}",
            render(
                &format!("windowed channel data path: {size} B messages, 0% loss"),
                &rows,
            )
        );
    }

    // Per-link loss accounting for the heaviest lossy cells: what the fault
    // plane actually injected on each link, from `World::link_fault_stats`.
    println!("per-link fault accounting (5% loss, 256 B cells):");
    for c in cells
        .iter()
        .filter(|c| c.loss == 0.05 && c.msg_bytes == 256)
    {
        println!(
            "  window {:>2}: {} retransmits, {} dups suppressed, \
             depth hwm {} slots / {} B",
            c.window, c.retransmits, c.dups_suppressed, c.depth_hwm, c.bytes_hwm
        );
        for (l, s) in &c.link_faults {
            println!(
                "    link {l}: dropped={} corrupted={} delayed={}",
                s.dropped, s.corrupted, s.delayed
            );
        }
    }

    let incomplete = cells.iter().filter(|c| !c.completed).count();
    assert_eq!(incomplete, 0, "{incomplete} sweep cells failed");

    // The Table 1 ordering must reproduce: windowed >= 2x stop-and-wait
    // goodput at 0% loss for 256-byte messages.
    let g = |w: u32| {
        cells
            .iter()
            .find(|c| c.window == w && c.msg_bytes == 256 && c.loss == 0.0)
            .expect("cell present")
            .goodput_kbps
    };
    assert!(
        g(8) >= 2.0 * g(1),
        "windowed 256B goodput {:.1} < 2x stop-and-wait {:.1}",
        g(8),
        g(1)
    );

    let root = workspace_root();
    let path = root.join("BENCH_datapath.json");
    std::fs::write(&path, to_json(&cells)).expect("write BENCH_datapath.json");
    println!("wrote {}", path.display());
}
