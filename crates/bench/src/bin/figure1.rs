//! F1 — Figure 1: "A Typical Local Area Multiprocessor System".
//!
//! The figure is a conceptual diagram: a pool of processing nodes on the
//! left, LAN-style resources (workstations, file server, gateway) on the
//! right, all on the HPC interconnect. This harness *constructs* that
//! system — ten SUN-3-class workstations plus the 70-node pool of the real
//! 1988 installation — prints its inventory, and runs one application that
//! spans two workstations and a set of processing nodes, the paper's
//! headline capability ("it is possible to build a single application that
//! spans many workstations and many nodes").

use desim::SimDuration;
use vorx::channel;
use vorx::hpcnet::{NodeAddr, Payload, Topology};
use vorx::VorxBuilder;

fn main() {
    // 10 workstations + 70 processing nodes = 80 endpoints on an
    // incomplete hypercube of 20 clusters x 4 ports.
    let topo = Topology::incomplete_hypercube(20, 4).expect("valid configuration");
    println!("Figure 1 system inventory:");
    println!("  clusters:            {}", topo.n_clusters());
    println!("  ports per cluster:   {}", vorx::hpcnet::PORTS_PER_CLUSTER);
    println!("  endpoints:           {}", topo.n_endpoints());
    println!("  host workstations:   10 (nodes n0..n9)");
    println!("  processing nodes:    70 (nodes n10..n79)");
    println!(
        "  longest route:       {} cluster hops",
        (0..topo.n_endpoints() as u32)
            .map(|i| topo.hops(NodeAddr(0), NodeAddr(i)))
            .max()
            .unwrap()
    );

    let mut v = VorxBuilder::with_topology(topo)
        .hosts(10)
        .trace(false)
        .build();

    // A spanning application: workstation n0 sources a work list, eight
    // processing nodes transform items, workstation n9 collects results.
    let workers: Vec<u32> = (10..18).collect();
    let items_per_worker = 20u32;

    for &wk in &workers {
        v.spawn(format!("n{wk}:worker"), move |ctx| {
            let node = NodeAddr(wk);
            let src = channel::open(&ctx, node, &format!("work-{wk}"));
            let dst = channel::open(&ctx, node, &format!("done-{wk}"));
            for _ in 0..items_per_worker {
                let item = src.read(&ctx).unwrap();
                vorx::api::user_compute(&ctx, node, SimDuration::from_ms(2));
                dst.write(&ctx, item).unwrap();
            }
        });
    }
    let wk_list = workers.clone();
    v.spawn("n0:source-ws", move |ctx| {
        let chans: Vec<_> = wk_list
            .iter()
            .map(|wk| channel::open(&ctx, NodeAddr(0), &format!("work-{wk}")))
            .collect();
        for i in 0..items_per_worker {
            for ch in &chans {
                ch.write(&ctx, Payload::Synthetic(256)).unwrap();
                let _ = i;
            }
        }
    });
    let wk_list = workers;
    v.spawn("n9:collect-ws", move |ctx| {
        let chans: Vec<_> = wk_list
            .iter()
            .map(|wk| channel::open(&ctx, NodeAddr(9), &format!("done-{wk}")))
            .collect();
        let total = items_per_worker as usize * chans.len();
        for _ in 0..total {
            let _ = channel::read_any(&ctx, NodeAddr(9), &chans).unwrap();
        }
        println!("  spanning app:        {total} items processed across 2 workstations + 8 nodes");
    });

    let end = v.run_all();
    println!("  spanning app time:   {end}");
    let w = v.world();
    println!(
        "  frames delivered:    {} ({} payload bytes)",
        w.net.stats.frames_delivered, w.net.stats.payload_bytes_delivered
    );
}
