//! E-DL — §3.3 program download: per-process stubs vs the shared-stub tree.
//!
//! "it takes 12 seconds to download and initialize a process on each of 70
//! processors. [...] With this method [the tree], it takes only two seconds
//! to download and start 70 processes."

use vorx_apps::download::{run_download, DownloadMode};
use vorx_bench::report::{render, Row};

fn main() {
    let text = 100 * 1024; // ~100 KB of program text
    let nodes = 70;
    let per = run_download(nodes, text, DownloadMode::PerProcessStub);
    let tree = run_download(nodes, text, DownloadMode::Tree);
    let rows = vec![
        Row::new(
            format!("per-process stubs, {nodes} nodes"),
            Some(12.0),
            per.as_secs_f64(),
            "s",
        ),
        Row::new(
            format!("shared stub + tree, {nodes} nodes"),
            Some(2.0),
            tree.as_secs_f64(),
            "s",
        ),
    ];
    print!(
        "{}",
        render("E-DL: application download, 70 nodes (§3.3)", &rows)
    );
    println!(
        "speedup: {:.1}x (paper: 6.0x)",
        per.as_secs_f64() / tree.as_secs_f64()
    );

    // Scaling sweep: where the per-process cost goes (host serialization).
    println!("\nper-node scaling:");
    for n in [10usize, 20, 40, 70] {
        let p = run_download(n, text, DownloadMode::PerProcessStub);
        let t = run_download(n, text, DownloadMode::Tree);
        println!(
            "  {n:>3} nodes: per-process {:>7.2}s   tree {:>6.3}s",
            p.as_secs_f64(),
            t.as_secs_f64()
        );
    }
}
