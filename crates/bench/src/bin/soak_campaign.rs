//! Chaos-soak campaign: layer every fault class the simulator knows — loss,
//! corruption, crash/restart churn, link flaps, and scripted overload
//! (budget squeezes + traffic-amplification bursts) — over long sim-time
//! runs on the sharded engine, and hold the result against online
//! invariant oracles.
//!
//! The 4-cluster incomplete hypercube (4 endpoints per cluster) carries
//! eight paced streams (one intra-cluster and one cross-cluster per
//! cluster) plus a listener/client rendezvous, all under:
//!
//! * 2% loss and 1% corruption on every link,
//! * two spare-node crash/restart cycles,
//! * a cluster-cable flap,
//! * byte-budget squeezes to zero on two switches (restored mid-run), and
//! * a burst window that amplifies payload sizes, derived purely from sim
//!   time so replay stays deterministic.
//!
//! Oracles (checked online by the readers and at quiescence over every
//! shard):
//!
//! 1. per-stream exactly-once FIFO delivery,
//! 2. no stuck writers — every process runs to completion,
//! 3. every port-link depth high-water mark within its hardware cap, and
//!    every switch's sheddable-byte high-water mark within the budget,
//! 4. all switch buffers drained at idle,
//! 5. membership convergence: all nodes up, no partition marks, no
//!    in-flight probes,
//! 6. replica consistency: every hash-home server registration present on
//!    its successor replica,
//! 7. the memory accountant's idle nodes still at the O(1) baseline,
//!
//! and — across the whole campaign — workers 1 and 4 must produce
//! bit-identical merged traces. (Deep cross-cluster partitions are the
//! sequential `partition_campaign`'s job: bridged frames model no link
//! churn — DESIGN.md §12.)
//!
//! Writes `BENCH_soak.json` at the workspace root.
//!
//! Usage:
//!   soak_campaign            # 3-seed sweep + BENCH_soak.json
//!   soak_campaign --smoke    # one seed under a wall-clock watchdog (CI)

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use desim::{FaultSchedule, LinkFaults, SimDuration, SimTime};
use vorx::hpcnet::{ClusterId, Fabric, LinkId, NetConfig, NodeAddr, Payload, Topology};
use vorx::{accounting, channel, objmgr, FaultStats, VCtx, VorxBuilder, VorxShardedSim, World};

/// Clusters in the campaign machine.
const CLUSTERS: u32 = 4;
/// Endpoints per cluster.
const PER_CLUSTER: u32 = 4;
/// Baseline per-switch sheddable-byte budget: finite (so the overload
/// plane is armed and the byte oracle has a bound) but far above what the
/// workload can buffer — only the scripted squeezes ever shed.
const BYTE_BUDGET: u64 = 64 * 1024;
/// Gap between stream writes.
const PACE_NS: u64 = 2_000_000;
/// Base payload bytes (amplified by burst windows).
const BASE_LEN: u32 = 96;
/// Burst window: payloads double while it is active.
const BURST_NS: (u64, u64) = (5_000_000, 20_000_000);
/// Squeeze window: clusters 0 and 2 drop to a zero byte budget here, so
/// every sheddable frame needing switch buffering inside it is shed.
const SQUEEZE_NS: (u64, u64) = (15_000_000, 40_000_000);

fn topo() -> Topology {
    Topology::incomplete_hypercube(CLUSTERS as usize, PER_CLUSTER as usize).expect("valid machine")
}

/// Endpoints of cluster `c`, in address order.
fn nodes_of(t: &Topology, c: u32) -> Vec<NodeAddr> {
    t.endpoints()
        .filter(|&n| t.cluster_of(n) == ClusterId(c))
        .collect()
}

/// Both directed link ids of the cluster cable `a`–`b`.
fn cable(a: u32, b: u32) -> [u32; 2] {
    let f = Fabric::new(topo(), NetConfig::paper_1988());
    [
        f.cluster_link(ClusterId(a), ClusterId(b)).expect("wired").0,
        f.cluster_link(ClusterId(b), ClusterId(a)).expect("wired").0,
    ]
}

/// Payload carrying its stream index, `amp`× the base length.
fn msg_payload(idx: u32, amp: u32) -> Payload {
    let mut buf = vec![0u8; (BASE_LEN * amp.max(1)) as usize];
    buf[..4].copy_from_slice(&idx.to_le_bytes());
    Payload::copy_from(&buf)
}

fn index_of(p: &Payload) -> u32 {
    let b = p.bytes().expect("data payload");
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Everything one `(seed, workers)` run produced, oracles pre-evaluated.
struct RunOutcome {
    trace: String,
    end_ns: u64,
    delivered: u32,
    done: u32,
    expected_done: u32,
    fifo_ok: bool,
    depth_ok: bool,
    bytes_ok: bool,
    drained: bool,
    membership_ok: bool,
    replicas_ok: bool,
    accountant_ok: bool,
    max_port_depth_hwm: usize,
    max_bytes_hwm: u64,
    frames_shed: u64,
    shed_links: usize,
    stats: FaultStats,
    mem_max: u64,
    mem_total: u64,
    mem_idle: usize,
    flaps: u64,
    lat_min_ns: u64,
    lat_mean_ns: u64,
    lat_max_ns: u64,
}

/// The fault script: every class layered on one seeded schedule. All of it
/// is a pure function of `(seed, sim time)` — nothing here can diverge
/// across worker counts.
fn soak_schedule(seed: u64, t: &Topology) -> FaultSchedule {
    let spare_a = *nodes_of(t, 0).last().expect("populated");
    let spare_c = *nodes_of(t, 2).last().expect("populated");
    let mut s = FaultSchedule::new(seed)
        .all_links(LinkFaults {
            drop: 0.02,
            corrupt: 0.01,
            delay: 0.0,
            delay_ns: 0,
        })
        // Crash/restart churn on process-free spares.
        .down_at(spare_a.0, SimTime::from_ns(20_000_000))
        .up_at(spare_a.0, SimTime::from_ns(45_000_000))
        .down_at(spare_c.0, SimTime::from_ns(30_000_000))
        .up_at(spare_c.0, SimTime::from_ns(55_000_000))
        // Overload: squeeze two switches to zero budget, then restore the
        // finite baseline; amplify offered load inside the burst window.
        .squeeze_at(0, SimTime::from_ns(SQUEEZE_NS.0), 0)
        .squeeze_at(0, SimTime::from_ns(SQUEEZE_NS.1), BYTE_BUDGET)
        .squeeze_at(2, SimTime::from_ns(SQUEEZE_NS.0), 0)
        .squeeze_at(2, SimTime::from_ns(SQUEEZE_NS.1), BYTE_BUDGET)
        .burst(
            SimTime::from_ns(BURST_NS.0),
            SimTime::from_ns(BURST_NS.1),
            2,
        );
    // A cluster-cable flap rides along.
    for l in cable(0, 1) {
        s = s
            .link_down_at(l, SimTime::from_ns(10_000_000))
            .link_up_at(l, SimTime::from_ns(25_000_000));
    }
    s
}

/// Per-shard snapshot of everything the quiescence oracles need, taken
/// under one short lock so no two shard guards are ever held together.
struct ShardSnap {
    /// `(node, [(servers-map key, server node)])` for owned nodes.
    servers: Vec<(u32, Vec<(String, u32)>)>,
    membership_ok: bool,
    depth_ok: bool,
    max_port_depth: usize,
    bytes_hwm: u64,
    bytes_now: u64,
    mem_max: u64,
    mem_total: u64,
    mem_idle: usize,
    stats: FaultStats,
    frames_shed: u64,
    shed_links: usize,
    flaps: u64,
    lat_min_ns: u64,
    lat_max_ns: u64,
    lat_sum_ns: u64,
    lat_count: u64,
}

fn snapshot_shard(w: &World, t: &Topology, shard: usize) -> ShardSnap {
    let owned: Vec<NodeAddr> = nodes_of(t, shard as u32);
    let mut snap = ShardSnap {
        servers: Vec::new(),
        membership_ok: true,
        depth_ok: true,
        max_port_depth: w.net.max_port_link_depth_hwm(),
        bytes_hwm: w.net.cluster_data_bytes_hwm(ClusterId(shard as u32)),
        bytes_now: w.net.cluster_data_bytes(ClusterId(shard as u32)),
        mem_max: 0,
        mem_total: 0,
        mem_idle: 0,
        stats: w.faults.stats.clone(),
        frames_shed: w.net.stats.frames_shed,
        shed_links: w.link_fault_stats().values().filter(|s| s.shed > 0).count(),
        flaps: w.link_fault_stats().values().map(|s| s.flaps).sum(),
        lat_min_ns: u64::MAX,
        lat_max_ns: 0,
        lat_sum_ns: 0,
        lat_count: 0,
    };
    // Delivered-latency profile over every link this shard recorded.
    for ls in w.link_fault_stats().values() {
        if ls.lat_count > 0 {
            snap.lat_min_ns = snap.lat_min_ns.min(ls.lat_min_ns);
            snap.lat_max_ns = snap.lat_max_ns.max(ls.lat_max_ns);
            snap.lat_sum_ns += ls.lat_sum_ns;
            snap.lat_count += ls.lat_count;
        }
    }
    // Hardware flow control must hold on every port link; endpoint rx
    // links are exempt (the documented cross-shard bridge simplification).
    for l in 0..w.net.n_links() {
        let l = LinkId(l as u32);
        if !w.net.link_ends_at_endpoint(l) && w.net.link_depth_hwm(l) > w.net.link_cap(l) {
            snap.depth_ok = false;
        }
    }
    let baseline = accounting::idle_node_bytes();
    for &a in &owned {
        let n = &w.nodes[a.0 as usize];
        if !(n.up && n.mbr.partitioned.is_empty() && n.mbr.probing.is_empty()) {
            snap.membership_ok = false;
        }
        let entries: Vec<(String, u32)> = n
            .mgr
            .servers
            .iter()
            .map(|(k, v)| (k.clone(), v.0))
            .collect();
        if !entries.is_empty() {
            snap.servers.push((a.0, entries));
        }
        let b = accounting::node_mem_bytes(n);
        snap.mem_max = snap.mem_max.max(b);
        snap.mem_total += b;
        if b == baseline {
            snap.mem_idle += 1;
        }
    }
    snap
}

/// Replica-consistency oracle over the collected per-shard snapshots:
/// every registration held by its hash-home must also sit on the successor
/// replica. (Distributed mode: home = hash(name) mod n, successor = the
/// next address — `objmgr::successor_for` in closed form.)
fn replicas_consistent(snaps: &[ShardSnap], n_nodes: u64) -> bool {
    let lookup = |node: u32, key: &str| -> Option<u32> {
        snaps
            .iter()
            .flat_map(|s| &s.servers)
            .find(|(n, _)| *n == node)
            .and_then(|(_, es)| es.iter().find(|(k, _)| k == key))
            .map(|(_, v)| *v)
    };
    for (node, entries) in snaps.iter().flat_map(|s| &s.servers) {
        for (key, server) in entries {
            // The servers-map key is `<kind>\0<name>`; the hash home is a
            // function of the name alone.
            let Some(name) = key.split('\0').nth(1) else {
                continue;
            };
            let home = (objmgr::name_hash(name) % n_nodes) as u32;
            if home != *node {
                continue; // a replica copy, not the home's own entry
            }
            let succ = ((u64::from(home) + 1) % n_nodes) as u32;
            if succ == home {
                continue;
            }
            if lookup(succ, key) != Some(*server) {
                return false;
            }
        }
    }
    true
}

/// Run the full soak once at `workers`, oracles evaluated at quiescence.
fn run_once(seed: u64, workers: usize, msgs: u32) -> RunOutcome {
    let t = topo();
    let mut v: VorxShardedSim = VorxBuilder::with_topology(t.clone())
        .seed(seed)
        .net_config(NetConfig {
            switch_byte_budget: BYTE_BUDGET,
            ..NetConfig::paper_1988()
        })
        .faults(soak_schedule(seed, &t))
        .build_sharded(workers);

    let done = Arc::new(AtomicU32::new(0));
    let fifo_ok = Arc::new(AtomicBool::new(true));
    let delivered = Arc::new(AtomicU32::new(0));
    // One paced writer/reader pair per stream; the reader is the online
    // FIFO oracle — it checks every delivery for exactly-once order the
    // moment it lands.
    let mut streams: Vec<(NodeAddr, NodeAddr, String)> = Vec::new();
    for c in 0..CLUSTERS {
        let here = nodes_of(&t, c);
        let next = nodes_of(&t, (c + 1) % CLUSTERS);
        // Intra-cluster: rides through its own switch, so the squeezes on
        // clusters 0 and 2 shed it; recovery is retransmission.
        streams.push((here[0], here[1], format!("soak.i{c}")));
        // Cross-cluster: exercises the shard bridge under the same churn.
        streams.push((here[2], next[2], format!("soak.x{c}")));
    }
    for (wn, rn, name) in streams {
        let rname = name.clone();
        let (f_ok, del, d1, d2) = (
            Arc::clone(&fifo_ok),
            Arc::clone(&delivered),
            Arc::clone(&done),
            Arc::clone(&done),
        );
        v.spawn_at(wn, format!("n{}:w:{name}", wn.0), move |ctx: VCtx| {
            let ch = channel::open(&ctx, wn, &name);
            for i in 0..msgs {
                ctx.sleep(SimDuration::from_ns(PACE_NS));
                // Offered load amplifies inside burst windows —
                // deterministically, from sim time alone.
                let amp = ctx.with(|w, s| w.faults.schedule.amplification(s.now().as_ns()));
                ch.write(&ctx, msg_payload(i, amp)).expect("writer failed");
            }
            d1.fetch_add(1, Ordering::Relaxed);
        });
        v.spawn_at(rn, format!("n{}:r:{rname}", rn.0), move |ctx: VCtx| {
            let ch = channel::open(&ctx, rn, &rname);
            for expect in 0..msgs {
                let i = index_of(&ch.read(&ctx).expect("reader failed"));
                if i != expect {
                    f_ok.store(false, Ordering::Relaxed);
                }
                del.fetch_add(1, Ordering::Relaxed);
            }
            d2.fetch_add(1, Ordering::Relaxed);
        });
    }
    // Listener/client rendezvous: server registrations flow through the
    // distributed manager and its successor replica (oracle 6), and the
    // connections ride the bounded listener backlog.
    let srv = nodes_of(&t, 1)[3];
    let cli = nodes_of(&t, 3)[3];
    let (del, d) = (Arc::clone(&delivered), Arc::clone(&done));
    v.spawn_at(srv, format!("n{}:server", srv.0), move |ctx: VCtx| {
        let lst = channel::listen(&ctx, srv, "soak.srv");
        for _ in 0..2 {
            let ch = lst.accept(&ctx);
            ch.read(&ctx).expect("server read");
            del.fetch_add(1, Ordering::Relaxed);
        }
        d.fetch_add(1, Ordering::Relaxed);
    });
    for k in 0..2u32 {
        let d = Arc::clone(&done);
        v.spawn_at(cli, format!("n{}:client{k}", cli.0), move |ctx: VCtx| {
            // Let the listener register before the first client open.
            ctx.sleep(SimDuration::from_ns(1_000_000 * u64::from(k + 1)));
            let ch = channel::open(&ctx, cli, "soak.srv");
            ch.write(&ctx, Payload::copy_from(b"soak"))
                .expect("client write");
            d.fetch_add(1, Ordering::Relaxed);
        });
    }
    let expected_done = 8 * 2 + 1 + 2;

    let end = v.run_all();
    let trace = v.merged_trace().to_json();

    let snaps: Vec<ShardSnap> = (0..v.n_shards())
        .map(|k| snapshot_shard(&v.world(k), &t, k))
        .collect();
    let mut stats = FaultStats::default();
    let (mut depth_ok, mut bytes_ok, mut drained, mut membership_ok) = (true, true, true, true);
    let (mut max_depth, mut max_bytes, mut shed, mut shed_links) = (0usize, 0u64, 0u64, 0usize);
    let (mut mem_max, mut mem_total, mut mem_idle) = (0u64, 0u64, 0usize);
    let mut flaps = 0u64;
    let (mut lat_min, mut lat_max, mut lat_sum, mut lat_count) = (u64::MAX, 0u64, 0u64, 0u64);
    for s in &snaps {
        flaps += s.flaps;
        if s.lat_count > 0 {
            lat_min = lat_min.min(s.lat_min_ns);
            lat_max = lat_max.max(s.lat_max_ns);
            lat_sum += s.lat_sum_ns;
            lat_count += s.lat_count;
        }
        depth_ok &= s.depth_ok;
        bytes_ok &= s.bytes_hwm <= BYTE_BUDGET;
        drained &= s.bytes_now == 0;
        membership_ok &= s.membership_ok;
        max_depth = max_depth.max(s.max_port_depth);
        max_bytes = max_bytes.max(s.bytes_hwm);
        shed += s.frames_shed;
        shed_links += s.shed_links;
        mem_max = mem_max.max(s.mem_max);
        mem_total += s.mem_total;
        mem_idle += s.mem_idle;
        stats.retransmits += s.stats.retransmits;
        stats.corrupted_rx += s.stats.corrupted_rx;
        stats.crashes += s.stats.crashes;
        stats.restarts += s.stats.restarts;
        stats.heals += s.stats.heals;
        stats.busy_sent += s.stats.busy_sent;
        stats.overload_rideouts += s.stats.overload_rideouts;
        stats.table_rejects += s.stats.table_rejects;
        stats.peer_down_events += s.stats.peer_down_events;
    }
    let n_nodes = u64::from(CLUSTERS) * u64::from(PER_CLUSTER);
    // The two crash/restart spares plus all-idle bystanders must leave at
    // least the untouched endpoints at the O(1) baseline.
    let accountant_ok = mem_idle >= 2;
    RunOutcome {
        trace,
        end_ns: end.as_ns(),
        delivered: delivered.load(Ordering::Relaxed),
        done: done.load(Ordering::Relaxed),
        expected_done,
        fifo_ok: fifo_ok.load(Ordering::Relaxed),
        depth_ok,
        bytes_ok,
        drained,
        membership_ok,
        replicas_ok: replicas_consistent(&snaps, n_nodes),
        accountant_ok,
        max_port_depth_hwm: max_depth,
        max_bytes_hwm: max_bytes,
        frames_shed: shed,
        shed_links,
        stats,
        mem_max,
        mem_total,
        mem_idle,
        flaps,
        lat_min_ns: if lat_count == 0 { 0 } else { lat_min },
        lat_mean_ns: lat_sum.checked_div(lat_count).unwrap_or(0),
        lat_max_ns: lat_max,
    }
}

/// One campaign cell: the same seed at workers 1 and 4, traces compared.
struct CellResult {
    seed: u64,
    msgs: u32,
    trace_identical: bool,
    run: RunOutcome,
}

impl CellResult {
    /// Every violated oracle, by name. Empty means the cell is clean.
    fn violations(&self) -> Vec<&'static str> {
        let r = &self.run;
        let mut v = Vec::new();
        if !r.fifo_ok {
            v.push("fifo");
        }
        if r.done != r.expected_done {
            v.push("stuck-process");
        }
        if !r.depth_ok {
            v.push("link-depth-cap");
        }
        if !r.bytes_ok {
            v.push("byte-budget");
        }
        if !r.drained {
            v.push("undrained-switch");
        }
        if !r.membership_ok {
            v.push("membership-convergence");
        }
        if !r.replicas_ok {
            v.push("replica-consistency");
        }
        if !r.accountant_ok {
            v.push("idle-memory-baseline");
        }
        if !self.trace_identical {
            v.push("worker-determinism");
        }
        if r.frames_shed == 0 {
            v.push("no-shedding-exercised");
        }
        if r.stats.retransmits == 0 {
            v.push("no-recovery-exercised");
        }
        v
    }
}

fn run_cell(seed: u64, msgs: u32) -> CellResult {
    let r1 = run_once(seed, 1, msgs);
    let r4 = run_once(seed, 4, msgs);
    let trace_identical = r1.trace == r4.trace
        && r1.end_ns == r4.end_ns
        && r1.frames_shed == r4.frames_shed
        && r1.stats.retransmits == r4.stats.retransmits;
    CellResult {
        seed,
        msgs,
        trace_identical,
        run: r1,
    }
}

fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}

/// Hand-rolled JSON, same convention as the other BENCH_*.json reports.
fn to_json(cells: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"note\": \"chaos soak: loss x corrupt x crash x flap x overload on a 4x4 \
         incomplete hypercube, sharded engine, workers {1,4}\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": {{ \"clusters\": {CLUSTERS}, \"endpoints_per_cluster\": {PER_CLUSTER}, \
         \"streams\": 8, \"byte_budget\": {BYTE_BUDGET}, \"base_len\": {BASE_LEN}, \
         \"squeeze_ns\": [{}, {}], \"burst_ns\": [{}, {}] }},\n",
        SQUEEZE_NS.0, SQUEEZE_NS.1, BURST_NS.0, BURST_NS.1,
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.run;
        let viol = c
            .violations()
            .iter()
            .map(|v| format!("\"{v}\""))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{ \"seed\": {}, \"messages_per_stream\": {}, \"end_ns\": {}, \
             \"delivered\": {}, \"trace_identical_workers_1_4\": {}, \"violations\": [{}], \
             \"frames_shed\": {}, \"shed_links\": {}, \"retransmits\": {}, \
             \"corrupted_rx\": {}, \"crashes\": {}, \"restarts\": {}, \"busy_sent\": {}, \
             \"overload_rideouts\": {}, \"table_rejects\": {}, \"peer_down_events\": {}, \
             \"max_port_depth_hwm\": {}, \"max_switch_bytes_hwm\": {}, \
             \"mem_max_node_bytes\": {}, \"mem_total_bytes\": {}, \"mem_idle_nodes\": {} }}{}\n",
            c.seed,
            c.msgs,
            r.end_ns,
            r.delivered,
            c.trace_identical,
            viol,
            r.frames_shed,
            r.shed_links,
            r.stats.retransmits,
            r.stats.corrupted_rx,
            r.stats.crashes,
            r.stats.restarts,
            r.stats.busy_sent,
            r.stats.overload_rideouts,
            r.stats.table_rejects,
            r.stats.peer_down_events,
            r.max_port_depth_hwm,
            r.max_bytes_hwm,
            r.mem_max,
            r.mem_total,
            r.mem_idle,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Wall-clock watchdog: abort loudly instead of hanging CI.
fn with_watchdog<T>(secs: u64, f: impl FnOnce() -> T) -> T {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    std::thread::spawn(move || {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(secs);
        while std::time::Instant::now() < deadline {
            if flag.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        eprintln!("soak campaign: watchdog expired after {secs}s — the run-to-idle hung");
        std::process::abort();
    });
    let r = f();
    done.store(true, Ordering::Relaxed);
    r
}

fn print_cell(c: &CellResult) {
    let r = &c.run;
    let viol = c.violations();
    println!(
        "seed {:#06x}: end {:>6.1} ms, {} delivered, shed {} on {} links, retx {}, \
         corrupt {}, crash/restart {}/{}, rideouts {}, flaps {}, \
         lat(ns) min/mean/max {}/{}/{}, depth hwm {}, bytes hwm {}, \
         mem max/idle {}/{}, workers-identical={} violations={:?}",
        c.seed,
        r.end_ns as f64 / 1e6,
        r.delivered,
        r.frames_shed,
        r.shed_links,
        r.stats.retransmits,
        r.stats.corrupted_rx,
        r.stats.crashes,
        r.stats.restarts,
        r.stats.overload_rideouts,
        r.flaps,
        r.lat_min_ns,
        r.lat_mean_ns,
        r.lat_max_ns,
        r.max_port_depth_hwm,
        r.max_bytes_hwm,
        r.mem_max,
        r.mem_idle,
        c.trace_identical,
        viol,
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        let cell = with_watchdog(180, || run_cell(0x50AC, 20));
        print_cell(&cell);
        let viol = cell.violations();
        assert!(viol.is_empty(), "smoke: oracle violations {viol:?}");
        println!("soak-campaign smoke OK: zero oracle violations, traces bit-identical");
        return;
    }

    let cells: Vec<CellResult> = (0..3)
        .map(|i| with_watchdog(600, || run_cell(0x50AC + i, 48)))
        .collect();
    println!(
        "chaos soak: 8 streams x 48 msgs, loss 2% corrupt 1%, squeeze {}..{} ms, \
         workers {{1,4}}",
        SQUEEZE_NS.0 / 1_000_000,
        SQUEEZE_NS.1 / 1_000_000
    );
    for c in &cells {
        print_cell(c);
    }
    let bad: usize = cells.iter().map(|c| c.violations().len()).sum();
    assert_eq!(bad, 0, "{bad} oracle violations across the campaign");

    let root = workspace_root();
    let path = root.join("BENCH_soak.json");
    std::fs::write(&path, to_json(&cells)).expect("write BENCH_soak.json");
    println!("wrote {}", path.display());
}
