//! E-OPEN — §3.2 resource management: the channel-open bottleneck.
//!
//! "The bottleneck in setting up communications occurred because all the
//! channel opens were processed by the single resource manager on the host.
//! [...] Because there are as many object managers as processing nodes, the
//! channel opening bottleneck is eliminated."

use hpcnet::NodeAddr;
use vorx::objmgr::ObjMgrMode;
use vorx_bench::{open_scaling, open_scaling_served};

fn main() {
    println!("== E-OPEN: startup channel-open time, centralized vs distributed ==");
    println!(
        "{:>6} {:>8} {:>18} {:>18} {:>9}",
        "nodes", "opens", "centralized (ms)", "distributed (ms)", "speedup"
    );
    for pairs in [2usize, 4, 8, 16, 32] {
        let central = open_scaling(pairs, ObjMgrMode::Centralized(NodeAddr(0)));
        let distrib = open_scaling(pairs, ObjMgrMode::Distributed);
        println!(
            "{:>6} {:>8} {:>18.2} {:>18.2} {:>8.1}x",
            pairs * 2,
            pairs * 2,
            central.as_ms_f64(),
            distrib.as_ms_f64(),
            central.as_ms_f64() / distrib.as_ms_f64()
        );
    }

    let served = open_scaling_served(16, ObjMgrMode::Distributed);
    let busy = served.iter().filter(|s| **s > 0).count();
    println!("\ndistributed hashing spread 32 opens over {busy} manager replicas (centralized: 1)");
}
