//! E-CTX — §5 subprocesses and the structuring alternatives.
//!
//! "A context switch, which includes saving both fixed and floating point
//! registers takes 80 µsec using a 25 MHz Motorola 68020 with a Motorola
//! 68882 floating point coprocessor. Because context switching is too slow
//! for some applications, program structuring techniques other than
//! subprocesses have been used" — coroutines (CEMU) and interrupt-level
//! programming (parallel SPICE).

use vorx_bench::report::{render, Row};
use vorx_bench::{ctx_structuring, measured_ctx_switch_us, Structuring};

fn main() {
    let switch = Row::new(
        "context switch (measured)",
        Some(80.0),
        measured_ctx_switch_us(),
        "us",
    );
    print!("{}", render("E-CTX: context-switch cost (§5)", &[switch]));

    println!("\nper-message service cost (64B messages, 50us of real work each):");
    let rows: Vec<Row> = [
        (Structuring::Subprocess, "subprocesses + semaphores"),
        (Structuring::Coroutine, "coroutines (CEMU style)"),
        (Structuring::InterruptLevel, "interrupt-level (SPICE style)"),
    ]
    .into_iter()
    .map(|(t, label)| Row::new(label, None, ctx_structuring(t, 200, 50_000), "us/msg"))
    .collect();
    print!("{}", render("structuring techniques", &rows));
    println!("(subprocesses pay ~2 context switches per message; coroutines save most registers; interrupt-level saves none)");
}
