//! E-SPICE — §4.1: "It was able to obtain 60 µsec software latencies for 64
//! byte messages with direct access to the communications hardware and no
//! low-level protocol."
//!
//! Measures the one-way raw-UDCO latency for the paper's message sizes and
//! runs the SPICE stand-in (a distributed Jacobi solver with raw-UDCO halo
//! exchange, verified bit-exactly against the serial iterate).

use desim::SimTime;
use hpcnet::{NodeAddr, Payload};
use vorx::udco::{self, UdcoMode};
use vorx::VorxBuilder;
use vorx_apps::spice::{run_spice, SpiceParams};
use vorx_bench::report::{render, Row};

/// One-way user-level latency of a raw (no-protocol) message.
fn raw_latency_us(len: u32) -> f64 {
    let mut v = VorxBuilder::single_cluster(2).trace(false).build();
    v.spawn("n0:tx", move |ctx| {
        udco::register(&ctx, NodeAddr(0), 5, UdcoMode::Raw);
        udco::send_raw(
            &ctx,
            NodeAddr(0),
            NodeAddr(1),
            5,
            0,
            Payload::Synthetic(len),
        );
    });
    v.spawn("n1:rx", move |ctx| {
        udco::register(&ctx, NodeAddr(1), 5, UdcoMode::Raw);
        let _ = udco::recv_raw_spin(&ctx, NodeAddr(1), 5);
    });
    let end = v.run_all();
    (end - SimTime::ZERO).as_us_f64()
}

fn main() {
    let rows = vec![
        Row::new("raw 4B one-way", None, raw_latency_us(4), "us"),
        Row::new("raw 64B one-way", Some(60.0), raw_latency_us(64), "us"),
        Row::new("raw 256B one-way", None, raw_latency_us(256), "us"),
        Row::new("raw 1024B one-way", None, raw_latency_us(1024), "us"),
    ];
    print!(
        "{}",
        render("E-SPICE: direct hardware access, no protocol (§4.1)", &rows)
    );

    let r = run_spice(
        SpiceParams {
            m: 256,
            p: 8,
            iters: 100,
        },
        11,
    );
    println!(
        "SPICE stand-in (256 unknowns / 8 nodes / 100 Jacobi iterations):\n  \
         {} total, {} per iteration, residual {:.3e}, parallel==serial: {}",
        r.elapsed,
        r.per_iter,
        r.residual,
        r.max_err == 0.0
    );
}
