//! E-SHARE — §3.1: why programmers demanded exclusive access.
//!
//! "We found that programmers did not want to share their processors
//! because they wanted to balance the computational load of their
//! application in a repeatable fashion. Realizing our mistake, we added
//! 'exclusive access' capabilities."
//!
//! A 4-worker, perfectly balanced computation is run twice: on exclusively
//! held nodes, and with another user's process time-sharing one node (the
//! Meglos default).

use vorx_bench::shared_vs_exclusive;

fn main() {
    println!("== E-SHARE: load-balance repeatability, exclusive vs shared (§3.1) ==\n");
    let (excl_make, excl_skew) = shared_vs_exclusive(false);
    let (shared_make, shared_skew) = shared_vs_exclusive(true);
    println!("4 balanced workers x 10ms of compute each:");
    println!(
        "  exclusive nodes:  makespan {:>8.2}ms   worker skew {:>8.3}ms",
        excl_make / 1000.0,
        excl_skew / 1000.0
    );
    println!(
        "  one node shared:  makespan {:>8.2}ms   worker skew {:>8.3}ms",
        shared_make / 1000.0,
        shared_skew / 1000.0
    );
    println!(
        "\nsharing one node stretches that worker by {:.1}x the others' time —",
        1.0 + shared_skew / (excl_make - excl_skew.max(0.0)).max(1.0)
    );
    println!("the balanced decomposition is no longer balanced, and (worse for");
    println!("debugging) the interference depends on what the *other* user runs.");
}
