//! Collective campaign: in-network combining vs software reduction trees.
//!
//! DESIGN.md §16's headline claim is that a combining fabric turns an
//! allreduce from O(fan-in) unicasts convoying through the root into one
//! frame per upward link: latency grows with the *diameter* of the
//! combining tree (≈ log fan-in), not with the member count. This campaign
//! measures that claim instead of asserting it in prose.
//!
//! Sweep: fan-in {8, 64, 512, 4096} × {software-tree, in-network} ×
//! workers {1, 4}, on a flat incomplete hypercube and (fan-in ≥ 64) a
//! hierarchical one whose gateway levels combine recursively. Every member
//! of one collective group runs a warm-up barrier, then `OPS` timed
//! sum-allreduces; the root's per-op simulated latency is the cell's
//! figure. Per cell the merged traces of workers 1 and 4 must be
//! bit-identical — combining arbitration is a pure function of arrival
//! order, so the sharded engine may not perturb it.
//!
//! Gates (enforced here, not just reported):
//!   * fan-in ≥ 512: in-network latency ≥ 3× lower than the software tree;
//!   * in-network latency grows sub-linearly: the 4096-member op costs
//!     < 20× the 8-member op against a 512× fan-in growth;
//!   * worker trace identity at every cell.
//!
//! Writes `BENCH_collective.json` at the workspace root.
//!
//! Usage:
//!   collective_campaign           # full sweep + JSON
//!   collective_campaign --smoke   # fan-in 512 flat, both modes (CI)

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use desim::affinity;
use vorx::collective::{self, CollMode, GroupCfg};
use vorx::hpcnet::combine::CombOp;
use vorx::hpcnet::{NodeAddr, Topology};
use vorx::{VorxBuilder, VorxShardedSim};

/// Shard count, fixed per cell across worker counts (clamped to the
/// cluster count on the smallest worlds); the shard partition is part of
/// the simulated outcome, so holding it constant is what makes the
/// workers-{1,4} trace comparison meaningful.
const SHARDS: usize = 8;
/// Campaign seed.
const SEED: u64 = 0xC0117;
/// Collective group id under test.
const GROUP: u32 = 5;
/// Timed allreduces per run (after one warm-up barrier).
const OPS: u64 = 4;
/// Software-tree radix: wide and shallow, the strongest software baseline
/// at these fan-ins.
const RADIX: u32 = 8;

/// The two topology families of the sweep.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Topo {
    Flat,
    Hier,
}

impl Topo {
    fn name(self) -> &'static str {
        match self {
            Topo::Flat => "flat",
            Topo::Hier => "hier",
        }
    }

    /// A world with exactly `fanin` endpoints, 4 per cluster.
    fn build(self, fanin: usize) -> Option<Topology> {
        let t = match (self, fanin) {
            // Beyond 512 endpoints a flat hypercube runs out of coupler
            // ports (dim 10 + 4 endpoints > the port budget) — scaling past
            // it is exactly what the hierarchical family is for.
            (Topo::Flat, f) if f > 512 => return None,
            (Topo::Flat, f) => Topology::incomplete_hypercube(f / 4, 4),
            // Gateway levels combine recursively: two levels at 64/512,
            // three at 4096.
            (Topo::Hier, 64) => Topology::hierarchical_hypercube(&[4, 4], 4),
            (Topo::Hier, 512) => Topology::hierarchical_hypercube(&[8, 16], 4),
            (Topo::Hier, 4096) => Topology::hierarchical_hypercube(&[8, 16, 8], 4),
            (Topo::Hier, _) => return None, // below 64 "hierarchical" is flat
        };
        Some(t.expect("valid campaign topology"))
    }
}

/// One `(fanin, topo, mode, workers)` run.
struct RunOutcome {
    /// Simulated ns for the `OPS` timed allreduces, measured at the root.
    ops_ns: u64,
    end_ns: u64,
    trace: String,
    wall_s: f64,
    coll_retries: u64,
}

fn run_once(fanin: usize, topo: Topo, mode: CollMode, workers: usize) -> RunOutcome {
    let t = topo.build(fanin).expect("cell exists");
    assert_eq!(t.n_endpoints(), fanin, "topology/fan-in mismatch");
    let v: VorxShardedSim = VorxBuilder::with_topology(t)
        .seed(SEED)
        .shards(SHARDS)
        .build_sharded(workers);
    collective::register_group_sharded(
        &v,
        &GroupCfg {
            group: GROUP,
            members: (0..fanin).map(|m| NodeAddr(m as u32)).collect(),
            mode,
        },
    );
    let ops_ns = Arc::new(AtomicU64::new(0));
    for m in 0..fanin {
        let ops_ns = Arc::clone(&ops_ns);
        v.spawn_at(NodeAddr(m as u32), format!("n{m}:coll"), move |ctx| {
            let node = NodeAddr(m as u32);
            let c = collective::attach(&ctx, node, GROUP);
            // Warm-up: absorb attach skew so the timed ops measure steady
            // state, not channel rendezvous.
            c.barrier(&ctx);
            let t0 = ctx.now();
            for i in 0..OPS {
                let r = c.allreduce(&ctx, CombOp::Sum, m as u64 + i);
                let n = fanin as u64;
                assert_eq!(r, n * (n - 1) / 2 + i * n, "wrong sum at member {m}");
            }
            if m == 0 {
                ops_ns.store((ctx.now() - t0).as_ns(), Ordering::Relaxed);
            }
        });
    }
    let mut v = v;
    let wall = Instant::now();
    let end = v.run_all();
    let wall_s = wall.elapsed().as_secs_f64();
    let coll_retries = v.sum_over_shards(|w| w.faults.stats.coll_retries);
    RunOutcome {
        ops_ns: ops_ns.load(Ordering::Relaxed),
        end_ns: end.as_ns(),
        trace: v.merged_trace().to_json(),
        wall_s,
        coll_retries,
    }
}

/// One campaign cell: a `(fanin, topo, mode)` point at workers 1 and 4.
struct Cell {
    fanin: usize,
    topo: Topo,
    mode_name: &'static str,
    /// Simulated latency of one allreduce, ns.
    op_ns: u64,
    end_ns: u64,
    trace_identical: bool,
    wall_s_w1: f64,
    wall_s_w4: f64,
    coll_retries: u64,
}

fn run_cell(fanin: usize, topo: Topo, mode: CollMode, mode_name: &'static str) -> Cell {
    let r1 = run_once(fanin, topo, mode, 1);
    let r4 = run_once(fanin, topo, mode, 4);
    assert!(r1.ops_ns > 0, "root never timed its ops");
    assert_eq!(
        r1.coll_retries,
        0,
        "fault-free {fanin}/{}/{mode_name}: retry timer fired",
        topo.name()
    );
    Cell {
        fanin,
        topo,
        mode_name,
        op_ns: r1.ops_ns / OPS,
        end_ns: r1.end_ns,
        trace_identical: r1.trace == r4.trace && r1.end_ns == r4.end_ns,
        wall_s_w1: r1.wall_s,
        wall_s_w4: r4.wall_s,
        coll_retries: r1.coll_retries,
    }
}

fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}

/// Hand-rolled JSON, same convention as the other BENCH_*.json reports.
fn to_json(host_cpus: usize, cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"note\": \"collective campaign: one group of <fanin> members, warm-up barrier \
         then 4 timed sum-allreduces; op_ns is the root's per-op simulated latency; \
         software tree radix 8; workers {1,4} traces compared per cell\",\n",
    );
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"fanin\": {}, \"topo\": \"{}\", \"mode\": \"{}\", \"op_ns\": {}, \
             \"end_ns\": {}, \"trace_identical_workers_1_4\": {}, \"wall_s_w1\": {:.3}, \
             \"wall_s_w4\": {:.3}, \"coll_retries\": {} }}{}\n",
            c.fanin,
            c.topo.name(),
            c.mode_name,
            c.op_ns,
            c.end_ns,
            c.trace_identical,
            c.wall_s_w1,
            c.wall_s_w4,
            c.coll_retries,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedups\": [\n");
    let pairs = speedups(cells);
    for (i, (fanin, topo, s)) in pairs.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"fanin\": {}, \"topo\": \"{}\", \"innet_speedup\": {:.2} }}{}\n",
            fanin,
            topo,
            s,
            if i + 1 == pairs.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// software-tree op_ns / in-network op_ns, per `(fanin, topo)`.
fn speedups(cells: &[Cell]) -> Vec<(usize, &'static str, f64)> {
    let mut out = Vec::new();
    for c in cells.iter().filter(|c| c.mode_name == "innet") {
        if let Some(t) = cells
            .iter()
            .find(|t| t.mode_name == "tree" && t.fanin == c.fanin && t.topo == c.topo)
        {
            out.push((c.fanin, c.topo.name(), t.op_ns as f64 / c.op_ns as f64));
        }
    }
    out
}

/// Wall-clock watchdog: abort loudly instead of hanging CI.
fn with_watchdog<T>(secs: u64, f: impl FnOnce() -> T) -> T {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    std::thread::spawn(move || {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(secs);
        while std::time::Instant::now() < deadline {
            if flag.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        eprintln!("collective campaign: watchdog expired after {secs}s — the run hung");
        std::process::abort();
    });
    let r = f();
    done.store(true, Ordering::Relaxed);
    r
}

fn print_cell(c: &Cell) {
    println!(
        "fan-in {:>4} {:>4} {:>5}: {:>10} ns/op, end {:.2} ms, retries {}, \
         wall {:.2}s/{:.2}s (w1/w4), workers-identical={}",
        c.fanin,
        c.topo.name(),
        c.mode_name,
        c.op_ns,
        c.end_ns as f64 / 1e6,
        c.coll_retries,
        c.wall_s_w1,
        c.wall_s_w4,
        c.trace_identical,
    );
}

/// The in-network-beats-software gate at one `(fanin, topo)` point.
fn assert_speedup(cells: &[Cell], fanin: usize, min: f64) {
    for (f, topo, s) in speedups(cells) {
        if f == fanin {
            assert!(
                s >= min,
                "fan-in {f} {topo}: in-network only {s:.2}x faster (gate: >= {min}x)"
            );
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let modes: [(CollMode, &'static str); 2] = [
        (CollMode::InNetwork, "innet"),
        (CollMode::SoftwareTree { radix: RADIX }, "tree"),
    ];

    if smoke {
        // One point past the gate threshold, flat only: big enough that the
        // O(fan-in) root convoy would be unmissable, small enough for CI.
        let cells: Vec<Cell> = with_watchdog(600, || {
            modes
                .iter()
                .map(|(m, name)| run_cell(512, Topo::Flat, *m, name))
                .collect()
        });
        for c in &cells {
            print_cell(c);
            assert!(
                c.trace_identical,
                "smoke: workers 1 vs 4 traces differ at fan-in 512 {}",
                c.mode_name
            );
        }
        assert_speedup(&cells, 512, 3.0);
        let (_, _, s) = speedups(&cells)[0];
        println!("collective-campaign smoke OK: traces bit-identical, in-network {s:.1}x");
        return;
    }

    let mut cells = Vec::new();
    for &fanin in &[8usize, 64, 512, 4096] {
        for topo in [Topo::Flat, Topo::Hier] {
            if topo.build(fanin).is_none() {
                continue;
            }
            for (m, name) in &modes {
                cells.push(with_watchdog(3600, || run_cell(fanin, topo, *m, name)));
                print_cell(cells.last().expect("just pushed"));
            }
        }
    }

    let bad = cells.iter().filter(|c| !c.trace_identical).count();
    assert_eq!(bad, 0, "{bad} cells broke worker determinism");
    assert_speedup(&cells, 512, 3.0);
    assert_speedup(&cells, 4096, 3.0);
    // Sub-linear growth: 512x the members, < 20x the latency. The small
    // end is flat, the large end hierarchical — the only family that
    // reaches 4096 endpoints — so the gate also covers recursive gateway
    // combining.
    let innet = |f: usize, topo: Topo| {
        cells
            .iter()
            .find(|c| c.mode_name == "innet" && c.topo == topo && c.fanin == f)
            .expect("cell exists")
            .op_ns
    };
    let (small, large) = (innet(8, Topo::Flat), innet(4096, Topo::Hier));
    assert!(
        large < small * 20,
        "in-network latency grew {small} -> {large} ns over a 512x fan-in growth \
         — that is not ~log scaling"
    );

    let host_cpus = affinity::effective_parallelism();
    let root = workspace_root();
    let path = root.join("BENCH_collective.json");
    std::fs::write(&path, to_json(host_cpus, &cells)).expect("write BENCH_collective.json");
    println!("wrote {}", path.display());
}
