//! Partition-tolerance campaign: drive a cross-fabric stream through link
//! cuts — reroutable cuts, short blips, and full partitions with heal — and
//! report what the partition plane costs.
//!
//! The 4-cluster incomplete hypercube (2 endpoints per cluster) runs a
//! writer in cluster 0 streaming 40 × 128 B messages to a reader in
//! cluster 3. Three churn modes, each crossed with background loss:
//!
//! * `reroute` — cut the cable the baseline route uses and never heal it:
//!   the fabric detours over the surviving path; the application never
//!   notices.
//! * `blip`    — isolate cluster 0 entirely, heal before the detection
//!   sweep fires: plain retransmission rides through.
//! * `outage`  — isolate cluster 0 past the sweep: blocked calls fail with
//!   the typed `Partitioned` error, state pauses, and the heal resumes the
//!   same channel without reopening.
//!
//! Writes `BENCH_partition.json` at the workspace root (recovery latency,
//! rerouted frames, failed writes, probe/sweep counts, per-link fault
//! stats).
//!
//! Usage:
//!   partition_campaign            # full sweep + BENCH_partition.json
//!   partition_campaign --smoke    # one outage cell under a wall-clock
//!                                 # watchdog, assert it recovers (CI)

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use desim::{FaultSchedule, LinkFaults, SimDuration, SimTime};
use parking_lot::Mutex;
use vorx::channel;
use vorx::hpcnet::{ClusterId, Fabric, NetConfig, NodeAddr, Payload, Topology};
use vorx::{VorxBuilder, VorxError};
use vorx_bench::report::{render, Row};

/// Messages in the stream.
const MSGS: u32 = 40;
/// Payload bytes per message.
const MSG_LEN: usize = 128;
/// Gap between writes, so cuts land mid-stream.
const PACE_NS: u64 = 1_000_000;
/// When the scripted cut fires.
const CUT_AT_NS: u64 = 10_000_000;

/// The churn a cell injects.
#[derive(Clone, Copy, PartialEq)]
enum Churn {
    /// Cut the primary-path cable, never heal: the fabric reroutes.
    Reroute,
    /// Isolate cluster 0 for `heal_delay_ns`; heals before/after the
    /// detection sweep depending on the delay.
    Isolate { heal_delay_ns: u64 },
}

impl Churn {
    fn label(self) -> &'static str {
        match self {
            Churn::Reroute => "reroute",
            // The sweep fires `partition_detect_ns` (250 ms) after the cut:
            // a shorter outage is an undetected blip, a longer one a
            // declared partition.
            Churn::Isolate { heal_delay_ns } if heal_delay_ns < 250_000_000 => "blip",
            Churn::Isolate { .. } => "outage",
        }
    }
}

/// The campaign topology.
fn topo() -> Topology {
    Topology::incomplete_hypercube(4, 2).expect("valid hypercube")
}

/// Both directed link ids of the cluster cable `a`–`b` (link numbering is a
/// pure function of the topology).
fn cable(a: u32, b: u32) -> [u32; 2] {
    let f = Fabric::new(topo(), NetConfig::paper_1988());
    [
        f.cluster_link(ClusterId(a), ClusterId(b)).expect("wired").0,
        f.cluster_link(ClusterId(b), ClusterId(a)).expect("wired").0,
    ]
}

/// First endpoint attached to cluster `c`.
fn node_in(c: u32) -> NodeAddr {
    let t = topo();
    (0..t.n_endpoints() as u32)
        .map(NodeAddr)
        .find(|&n| t.cluster_of(n) == ClusterId(c))
        .expect("cluster populated")
}

/// 128 B payload carrying its stream index in the first four bytes.
fn msg_payload(idx: u32) -> Payload {
    let mut buf = vec![0u8; MSG_LEN];
    buf[..4].copy_from_slice(&idx.to_le_bytes());
    Payload::copy_from(&buf)
}

/// Recover the stream index from a payload.
fn index_of(p: &Payload) -> u32 {
    let b = p.bytes().expect("data payload");
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// What the reader observed.
#[derive(Default)]
struct Progress {
    delivered: Vec<u32>,
    /// Cut-to-first-post-cut-delivery latency.
    recovery_ns: Option<u64>,
}

/// One campaign cell's outcome.
struct CellResult {
    mode: &'static str,
    loss: f64,
    seed: u64,
    completed: bool,
    delivered: u32,
    elapsed_ns: u64,
    failed_writes: u32,
    retransmits: u64,
    frames_rerouted: u64,
    frames_dropped: u64,
    partitions: u64,
    heals: u64,
    probes_sent: u64,
    recovery_ns: Option<u64>,
    leaked_waiters: usize,
    /// Per-link fault counters for every link the timeline touched.
    link_downs: Vec<(u32, desim::LinkStats)>,
    /// Max port-link occupancy high-water mark (slots).
    depth_hwm: usize,
    /// Max per-switch sheddable-byte high-water mark.
    bytes_hwm: u64,
}

/// Run one cell: fixed seed, `loss` on every link, one scripted churn.
fn run_cell(churn: Churn, loss: f64, seed: u64) -> CellResult {
    let (src, dst) = (node_in(0), node_in(3));
    let mut schedule = FaultSchedule::new(seed);
    if loss > 0.0 {
        schedule = schedule.all_links(LinkFaults::loss(loss));
    }
    match churn {
        Churn::Reroute => {
            let first_hop = topo().cluster_path(src, dst)[1].0;
            for l in cable(0, first_hop) {
                schedule = schedule.link_down_at(l, SimTime::from_ns(CUT_AT_NS));
            }
        }
        Churn::Isolate { heal_delay_ns } => {
            for cab in [cable(0, 1), cable(0, 2)] {
                for l in cab {
                    schedule = schedule
                        .link_down_at(l, SimTime::from_ns(CUT_AT_NS))
                        .link_up_at(l, SimTime::from_ns(CUT_AT_NS + heal_delay_ns));
                }
            }
        }
    }
    let mut v = VorxBuilder::hypercube(4, 2)
        .trace(false)
        .faults(schedule)
        .build();

    // Opens can themselves land inside the outage (the request to the name's
    // home manager is lost or times out across the cut); both sides treat
    // that as transient, like the write path.
    fn open_retrying(
        ctx: &desim::Ctx<vorx::world::World>,
        node: NodeAddr,
        name: &str,
    ) -> channel::ChannelHandle {
        let mut attempts = 0u32;
        loop {
            match channel::try_open(ctx, node, name) {
                Ok(ch) => return ch,
                Err(VorxError::Unreachable | VorxError::Partitioned) => {
                    attempts += 1;
                    assert!(attempts < 200, "open retried unboundedly");
                    ctx.sleep(SimDuration::from_ns(20_000_000));
                }
                Err(e) => panic!("open: unexpected error {e:?}"),
            }
        }
    }

    let failed_writes = Arc::new(Mutex::new(0u32));
    let fw = Arc::clone(&failed_writes);
    v.spawn("writer", move |ctx| {
        let ch = open_retrying(&ctx, src, "part.stream");
        let mut idx = 0u32;
        while idx < MSGS {
            ctx.sleep(SimDuration::from_ns(PACE_NS));
            match ch.write(&ctx, msg_payload(idx)) {
                Ok(()) => idx += 1,
                Err(VorxError::Partitioned) => {
                    // Typed, bounded-time failure: count it, wait out the
                    // outage, retry the same message on the same handle.
                    *fw.lock() += 1;
                    assert!(*fw.lock() < 5_000, "writer stalled unboundedly");
                    ctx.sleep(SimDuration::from_ns(20_000_000));
                }
                Err(e) => panic!("writer: unexpected error {e:?}"),
            }
        }
    });

    let progress = Arc::new(Mutex::new(Progress::default()));
    let shared = Arc::clone(&progress);
    v.spawn("reader", move |ctx| {
        let ch = open_retrying(&ctx, dst, "part.stream");
        let mut expect = 0u32;
        let mut stalls = 0u32;
        while expect < MSGS {
            match ch.read(&ctx) {
                Ok(payload) => {
                    let i = index_of(&payload);
                    if i != expect {
                        continue; // app-level duplicate from a write retry
                    }
                    let mut g = shared.lock();
                    let now = ctx.now().as_ns();
                    if now > CUT_AT_NS && g.recovery_ns.is_none() {
                        g.recovery_ns = Some(now - CUT_AT_NS);
                    }
                    g.delivered.push(i);
                    drop(g);
                    expect += 1;
                }
                Err(VorxError::Partitioned) => {
                    stalls += 1;
                    assert!(stalls < 5_000, "reader stalled unboundedly");
                    ctx.sleep(SimDuration::from_ns(20_000_000));
                }
                Err(e) => panic!("reader: unexpected error {e:?}"),
            }
        }
    });

    let report = v.run();
    let elapsed_ns = report.now.as_ns();
    let leaked_waiters = report.parked.len();
    let (stats, frames_rerouted, frames_dropped, link_downs, depth_hwm, bytes_hwm) = {
        let w = v.world();
        let link_downs: Vec<(u32, desim::LinkStats)> = w
            .link_fault_stats()
            .iter()
            .filter(|(_, s)| s.downs > 0 || s.flaps > 0)
            .map(|(l, s)| (*l, *s))
            .collect();
        (
            w.faults.stats.clone(),
            w.net.stats.frames_rerouted,
            w.net.stats.frames_dropped,
            link_downs,
            w.net.max_port_link_depth_hwm(),
            w.net.max_cluster_data_bytes_hwm(),
        )
    };

    let g = progress.lock();
    let in_order = g
        .delivered
        .iter()
        .enumerate()
        .all(|(i, &got)| got == i as u32);
    let delivered = g.delivered.len() as u32;
    let failed_writes = *failed_writes.lock();
    CellResult {
        mode: churn.label(),
        loss,
        seed,
        completed: delivered == MSGS && in_order && leaked_waiters == 0,
        delivered,
        elapsed_ns,
        failed_writes,
        retransmits: stats.retransmits,
        frames_rerouted,
        frames_dropped,
        partitions: stats.partitions,
        heals: stats.heals,
        probes_sent: stats.probes_sent,
        recovery_ns: g.recovery_ns,
        leaked_waiters,
        link_downs,
        depth_hwm,
        bytes_hwm,
    }
}

/// Walk up from cwd until the directory holding `Cargo.lock`.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}

/// Emit the campaign as hand-rolled JSON (same convention as the other
/// BENCH_*.json reports: no serde dependency on the output path).
fn to_json(cells: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"note\": \"partition campaign: cluster-0 writer -> cluster-3 reader on an \
         incomplete 4-hypercube under link churn\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": {{ \"messages\": {MSGS}, \"bytes_per_message\": {MSG_LEN}, \
         \"clusters\": 4, \"endpoints_per_cluster\": 2, \"cut_at_ns\": {CUT_AT_NS} }},\n",
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let recovery = c
            .recovery_ns
            .map(|n| n.to_string())
            .unwrap_or_else(|| "null".into());
        let links = c
            .link_downs
            .iter()
            .map(|(l, s)| {
                format!(
                    "{{ \"link\": {l}, \"downs\": {}, \"down_drops\": {}, \"flaps\": {} }}",
                    s.downs, s.down_drops, s.flaps
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{ \"mode\": \"{}\", \"loss\": {:.2}, \"seed\": {}, \"completed\": {}, \
             \"delivered\": {}, \"elapsed_ns\": {}, \"failed_writes\": {}, \
             \"retransmits\": {}, \"frames_rerouted\": {}, \"frames_dropped\": {}, \
             \"partitions\": {}, \"heals\": {}, \"probes_sent\": {}, \
             \"recovery_latency_ns\": {}, \"leaked_waiters\": {}, \"links_down\": [{}] }}{}\n",
            c.mode,
            c.loss,
            c.seed,
            c.completed,
            c.delivered,
            c.elapsed_ns,
            c.failed_writes,
            c.retransmits,
            c.frames_rerouted,
            c.frames_dropped,
            c.partitions,
            c.heals,
            c.probes_sent,
            recovery,
            c.leaked_waiters,
            links,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run `f` with a wall-clock watchdog: if the simulation fails to reach
/// idle in `secs`, abort loudly instead of hanging CI. This is the
/// "run-to-idle terminates" gate in executable form.
fn with_watchdog<T>(secs: u64, f: impl FnOnce() -> T) -> T {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    std::thread::spawn(move || {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(secs);
        while std::time::Instant::now() < deadline {
            if flag.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        eprintln!("partition campaign: watchdog expired after {secs}s — the run-to-idle hung");
        std::process::abort();
    });
    let r = f();
    done.store(true, Ordering::Relaxed);
    r
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        // CI gate: a declared partition (heal after the sweep) plus 2%
        // loss, under a wall-clock watchdog. The stream must complete
        // exactly-once in order, with the partition both declared and
        // healed, and nothing left parked.
        let c = with_watchdog(120, || {
            run_cell(
                Churn::Isolate {
                    heal_delay_ns: 400_000_000,
                },
                0.02,
                // Same seed as the sweep's outage/2%-loss cell.
                0x9A57 + 5,
            )
        });
        assert!(
            c.completed,
            "smoke: {}/{MSGS} delivered in order",
            c.delivered
        );
        assert!(c.partitions >= 1, "smoke: the sweep never declared");
        assert!(c.heals >= 1, "smoke: the heal never cleared");
        assert!(c.failed_writes >= 1, "smoke: no typed write failure seen");
        assert_eq!(c.leaked_waiters, 0, "smoke: leaked blocked waiters");
        println!(
            "partition-campaign smoke OK: {}/{MSGS} delivered, {} failed writes (typed), \
             {} partitions / {} heals, recovery {:.1} ms, 0 leaked waiters, \
             depth hwm {} slots / {} B",
            c.delivered,
            c.failed_writes,
            c.partitions,
            c.heals,
            c.recovery_ns.unwrap_or(0) as f64 / 1e6,
            c.depth_hwm,
            c.bytes_hwm,
        );
        for (l, s) in &c.link_downs {
            let lat = if s.lat_count > 0 {
                format!(
                    " lat(ns) min/mean/max={}/{}/{} over {}",
                    s.lat_min_ns,
                    s.lat_mean_ns(),
                    s.lat_max_ns,
                    s.lat_count
                )
            } else {
                String::new()
            };
            println!(
                "  link {l}: downs={} mid-flight drops={} flaps={}{lat}",
                s.downs, s.down_drops, s.flaps
            );
        }
        return;
    }

    let mut cells = Vec::new();
    let churns = [
        Churn::Reroute,
        Churn::Isolate {
            heal_delay_ns: 100_000_000,
        },
        Churn::Isolate {
            heal_delay_ns: 400_000_000,
        },
    ];
    for (i, &churn) in churns.iter().enumerate() {
        for (j, &loss) in [0.0, 0.02].iter().enumerate() {
            let seed = 0x9A57 + (i as u64) * 2 + j as u64;
            cells.push(run_cell(churn, loss, seed));
        }
    }

    let rows: Vec<Row> = cells
        .iter()
        .map(|c| {
            let label = format!("{:<8} loss {:>2.0}%", c.mode, c.loss * 100.0);
            Row::new(
                label,
                None,
                c.recovery_ns.unwrap_or(0) as f64 / 1e6,
                "ms to recover",
            )
        })
        .collect();
    print!(
        "{}",
        render(
            &format!(
                "partition campaign: {MSGS} x {MSG_LEN} B stream, cluster 0 -> cluster 3, \
                 cut at {} ms",
                CUT_AT_NS / 1_000_000
            ),
            &rows,
        )
    );
    for c in &cells {
        println!(
            "{:<8} loss {:>4.2}: completed={} failed_writes={} rerouted={} dropped={} \
             partitions={} heals={} probes={} recovery={} depth_hwm={} bytes_hwm={}",
            c.mode,
            c.loss,
            c.completed,
            c.failed_writes,
            c.frames_rerouted,
            c.frames_dropped,
            c.partitions,
            c.heals,
            c.probes_sent,
            c.recovery_ns
                .map(|n| format!("{:.1}ms", n as f64 / 1e6))
                .unwrap_or_else(|| "-".into()),
            c.depth_hwm,
            c.bytes_hwm,
        );
        for (l, s) in &c.link_downs {
            let lat = if s.lat_count > 0 {
                format!(
                    " lat(ns) min/mean/max={}/{}/{} over {}",
                    s.lat_min_ns,
                    s.lat_mean_ns(),
                    s.lat_max_ns,
                    s.lat_count
                )
            } else {
                String::new()
            };
            println!(
                "  link {l}: downs={} mid-flight drops={} flaps={}{lat}",
                s.downs, s.down_drops, s.flaps
            );
        }
    }

    let incomplete = cells.iter().filter(|c| !c.completed).count();
    assert_eq!(
        incomplete, 0,
        "{incomplete} campaign cells failed to recover"
    );

    let root = workspace_root();
    let path = root.join("BENCH_partition.json");
    std::fs::write(&path, to_json(&cells)).expect("write BENCH_partition.json");
    println!("wrote {}", path.display());
}
