//! Fault-injection campaign: drive a writer→reader stream through seeded
//! loss and a mid-run crash/restart, and report what the recovery
//! protocols cost.
//!
//! A 4-node cluster runs the object manager on node 0 (never faulted), a
//! writer on node 1 and a reader on node 2. The writer streams 50 × 256 B
//! messages, each carrying its index. The fault schedule crashes the
//! reader's node mid-stream and restarts it; the pair then fails over to a
//! generation-suffixed channel name (`stream.g1`) where the reader first
//! reports how far it got, so delivery is exactly-once end to end even
//! though the transport below is at-least-once.
//!
//! The sweep crosses loss ∈ {0, 1, 5, 10}% with {0, 1} crashes, every cell
//! from a fixed seed, and writes `BENCH_faults.json` at the workspace root
//! (goodput, retransmits, duplicates suppressed, recovery latency).
//!
//! Usage:
//!   fault_campaign            # full sweep + BENCH_faults.json
//!   fault_campaign --smoke    # one faulted cell, assert it recovers (CI)

use std::path::PathBuf;
use std::sync::Arc;

use desim::{FaultSchedule, LinkFaults, SimTime};
use parking_lot::Mutex;
use vorx::channel;
use vorx::hpcnet::{NodeAddr, Payload};
use vorx::objmgr::ObjMgrMode;
use vorx::{VorxBuilder, VorxError};
use vorx_bench::report::{render, Row};

/// Messages in the stream.
const MSGS: u32 = 50;
/// Payload bytes per message.
const MSG_LEN: usize = 256;
/// Node running the writer.
const WRITER: NodeAddr = NodeAddr(1);
/// Node running the reader (the one that crashes).
const READER: NodeAddr = NodeAddr(2);
/// When the reader's node crashes (mid-stream for this workload).
const CRASH_AT_NS: u64 = 5_000_000;
/// When it comes back up, cold.
const RESTART_AT_NS: u64 = 50_000_000;

/// Channel name for one failover generation.
fn stream_name(generation: u32) -> String {
    format!("stream.g{generation}")
}

/// 256 B payload carrying its stream index in the first four bytes.
fn msg_payload(idx: u32) -> Payload {
    let mut buf = vec![0u8; MSG_LEN];
    buf[..4].copy_from_slice(&idx.to_le_bytes());
    Payload::copy_from(&buf)
}

/// Recover the stream index from a payload.
fn index_of(p: &Payload) -> u32 {
    let b = p.bytes().expect("data payload");
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// What the reader observed, shared with the harness.
#[derive(Default)]
struct Progress {
    /// Indices committed, in commit order.
    delivered: Vec<u32>,
    /// Crash-to-first-post-recovery-delivery latency.
    recovery_ns: Option<u64>,
}

/// One campaign cell's outcome.
struct CellResult {
    loss: f64,
    crashed: bool,
    seed: u64,
    completed: bool,
    delivered: u32,
    elapsed_ns: u64,
    goodput_kbps: f64,
    retransmits: u64,
    dups_suppressed: u64,
    corrupted_rx: u64,
    peer_down_events: u64,
    crashes: u64,
    restarts: u64,
    recovery_ns: Option<u64>,
    leaked_waiters: usize,
    /// Per-link injection counters, links with any activity only.
    link_faults: Vec<(u32, desim::LinkStats)>,
    /// Max port-link occupancy high-water mark (slots).
    depth_hwm: usize,
    /// Max per-switch sheddable-byte high-water mark.
    bytes_hwm: u64,
}

/// Run one cell: fixed seed, `loss` on every link, optionally one
/// crash/restart of the reader's node.
fn run_cell(loss: f64, crash: bool, seed: u64) -> CellResult {
    let mut schedule = FaultSchedule::new(seed);
    if loss > 0.0 {
        schedule = schedule.all_links(LinkFaults::loss(loss));
    }
    if crash {
        schedule = schedule
            .down_at(READER.0, SimTime::from_ns(CRASH_AT_NS))
            .up_at(READER.0, SimTime::from_ns(RESTART_AT_NS));
    }
    let mut v = VorxBuilder::single_cluster(4)
        .objmgr(ObjMgrMode::Centralized(NodeAddr(0)))
        .trace(false)
        .faults(schedule)
        .build();

    v.spawn("n1:writer", move |ctx| {
        let mut generation = 0u32;
        let mut idx = 0u32;
        let mut ch = channel::try_open(&ctx, WRITER, &stream_name(0)).expect("initial open");
        while idx < MSGS {
            match ch.write(&ctx, msg_payload(idx)) {
                Ok(()) => idx += 1,
                Err(_) => {
                    // Peer declared down: abandon this generation and
                    // rendezvous on the next. The reader reports its resume
                    // point first, which both rewinds past anything the
                    // crash swallowed and skips anything already committed.
                    ch.close(&ctx);
                    generation += 1;
                    ch = channel::try_open(&ctx, WRITER, &stream_name(generation))
                        .expect("failover open");
                    let resume = ch.read(&ctx).expect("resume index");
                    idx = index_of(&resume);
                }
            }
        }
        ch.close(&ctx);
    });

    let progress = Arc::new(Mutex::new(Progress::default()));
    let shared = Arc::clone(&progress);
    v.spawn("n2:reader", move |ctx| {
        let mut generation = 0u32;
        let mut expect = 0u32;
        'recover: loop {
            let ch = match channel::try_open(&ctx, READER, &stream_name(generation)) {
                Ok(ch) => ch,
                Err(_) => {
                    vorx::fault::wait_until_up(&ctx, READER);
                    generation += 1;
                    continue 'recover;
                }
            };
            if generation > 0
                && ch
                    .write(&ctx, Payload::copy_from(&expect.to_le_bytes()))
                    .is_err()
            {
                // Crashed again before the resume index got through.
                vorx::fault::wait_until_up(&ctx, READER);
                generation += 1;
                continue 'recover;
            }
            loop {
                match ch.read(&ctx) {
                    Ok(payload) => {
                        let i = index_of(&payload);
                        if i != expect {
                            continue; // app-level duplicate from the rewind
                        }
                        let mut g = shared.lock();
                        if generation > 0 && g.recovery_ns.is_none() {
                            g.recovery_ns = Some(ctx.now().as_ns() - CRASH_AT_NS);
                        }
                        g.delivered.push(i);
                        drop(g);
                        expect += 1;
                        if expect == MSGS {
                            return;
                        }
                    }
                    Err(VorxError::NodeDown) => {
                        // Our own node crashed; wait out the outage and
                        // rendezvous on the next generation.
                        vorx::fault::wait_until_up(&ctx, READER);
                        generation += 1;
                        continue 'recover;
                    }
                    Err(_) => {
                        // Writer abandoned this generation.
                        generation += 1;
                        continue 'recover;
                    }
                }
            }
        }
    });

    let report = v.run();
    if std::env::var("FAULT_CAMPAIGN_DEBUG").is_ok() {
        for (pid, name) in &report.parked {
            eprintln!("parked: {pid:?} {name}");
        }
    }
    let elapsed_ns = report.now.as_ns();
    let leaked_waiters = report.parked.len();
    let (stats, link_faults, depth_hwm, bytes_hwm) = {
        let w = v.world();
        let link_faults: Vec<(u32, desim::LinkStats)> = w
            .link_fault_stats()
            .iter()
            .filter(|(_, s)| **s != desim::LinkStats::default())
            .map(|(l, s)| (*l, *s))
            .collect();
        (
            w.faults.stats.clone(),
            link_faults,
            w.net.max_port_link_depth_hwm(),
            w.net.max_cluster_data_bytes_hwm(),
        )
    };

    let g = progress.lock();
    let in_order = g
        .delivered
        .iter()
        .enumerate()
        .all(|(i, &got)| got == i as u32);
    let delivered = g.delivered.len() as u32;
    let completed = delivered == MSGS && in_order && leaked_waiters == 0;
    let secs = SimTime::from_ns(elapsed_ns).as_secs_f64();
    let goodput_kbps = if secs > 0.0 {
        (u64::from(delivered) * MSG_LEN as u64) as f64 / 1e3 / secs
    } else {
        0.0
    };
    CellResult {
        loss,
        crashed: crash,
        seed,
        completed,
        delivered,
        elapsed_ns,
        goodput_kbps,
        retransmits: stats.retransmits,
        dups_suppressed: stats.dups_suppressed,
        corrupted_rx: stats.corrupted_rx,
        peer_down_events: stats.peer_down_events,
        crashes: stats.crashes,
        restarts: stats.restarts,
        recovery_ns: g.recovery_ns,
        leaked_waiters,
        link_faults,
        depth_hwm,
        bytes_hwm,
    }
}

/// Render one cell's per-link injection counters as indented summary lines,
/// with the delivered-latency profile when the schedule recorded one.
fn print_link_faults(cell: &CellResult) {
    for (l, s) in &cell.link_faults {
        let lat = if s.lat_count > 0 {
            format!(
                " lat(ns) min/mean/max={}/{}/{} over {}",
                s.lat_min_ns,
                s.lat_mean_ns(),
                s.lat_max_ns,
                s.lat_count
            )
        } else {
            String::new()
        };
        println!(
            "  link {l}: dropped={} corrupted={} delayed={} down_drops={} downs={} flaps={}{lat}",
            s.dropped, s.corrupted, s.delayed, s.down_drops, s.downs, s.flaps
        );
    }
}

/// Walk up from cwd until the directory holding `Cargo.lock`.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}

/// Emit the campaign as hand-rolled JSON (same convention as the other
/// BENCH_*.json reports: no serde dependency on the output path).
fn to_json(cells: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"note\": \"seeded fault campaign: writer n1 -> reader n2, \
         stop-and-wait channel with retransmit + failover\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": {{ \"messages\": {MSGS}, \"bytes_per_message\": {MSG_LEN}, \
         \"nodes\": 4, \"crash_at_ns\": {CRASH_AT_NS}, \"restart_at_ns\": {RESTART_AT_NS} }},\n",
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let recovery = c
            .recovery_ns
            .map(|n| n.to_string())
            .unwrap_or_else(|| "null".into());
        out.push_str(&format!(
            "    {{ \"loss\": {:.2}, \"crashes\": {}, \"seed\": {}, \"completed\": {}, \
             \"delivered\": {}, \"elapsed_ns\": {}, \"goodput_kbps\": {:.1}, \
             \"retransmits\": {}, \"dups_suppressed\": {}, \"corrupted_rx\": {}, \
             \"peer_down_events\": {}, \"node_crashes\": {}, \"node_restarts\": {}, \
             \"recovery_latency_ns\": {}, \"leaked_waiters\": {} }}{}\n",
            c.loss,
            u32::from(c.crashed),
            c.seed,
            c.completed,
            c.delivered,
            c.elapsed_ns,
            c.goodput_kbps,
            c.retransmits,
            c.dups_suppressed,
            c.corrupted_rx,
            c.peer_down_events,
            c.crashes,
            c.restarts,
            recovery,
            c.leaked_waiters,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        // CI gate: 5% loss plus one crash/restart, fixed seed. The workload
        // must complete exactly-once in order with nothing left parked.
        let c = run_cell(0.05, true, 0xFA05);
        assert_eq!(
            c.delivered, MSGS,
            "smoke: delivered {}/{MSGS} messages",
            c.delivered
        );
        assert!(c.completed, "smoke: stream did not complete in order");
        assert_eq!(c.leaked_waiters, 0, "smoke: leaked blocked waiters");
        assert_eq!((c.crashes, c.restarts), (1, 1), "smoke: fault plane idle");
        println!(
            "fault-campaign smoke OK: {}/{MSGS} delivered, {} retransmits, \
             {} dups suppressed, recovery {:.1} ms, 0 leaked waiters, \
             depth hwm {} slots / {} B",
            c.delivered,
            c.retransmits,
            c.dups_suppressed,
            c.recovery_ns.unwrap_or(0) as f64 / 1e6,
            c.depth_hwm,
            c.bytes_hwm,
        );
        print_link_faults(&c);
        return;
    }

    let losses = [0.0, 0.01, 0.05, 0.10];
    let mut cells = Vec::new();
    for (i, &loss) in losses.iter().enumerate() {
        for crash in [false, true] {
            let seed = 0xFA10 + (i as u64) * 2 + u64::from(crash);
            cells.push(run_cell(loss, crash, seed));
        }
    }

    let rows: Vec<Row> = cells
        .iter()
        .map(|c| {
            let label = format!(
                "loss {:>2.0}%{}",
                c.loss * 100.0,
                if c.crashed { " + crash" } else { "        " }
            );
            Row::new(label, None, c.goodput_kbps, "KB/s")
        })
        .collect();
    print!(
        "{}",
        render(
            &format!("fault campaign: {MSGS} x {MSG_LEN} B stream, writer n1 -> reader n2"),
            &rows,
        )
    );
    for c in &cells {
        println!(
            "loss {:>4.2} crash {}: completed={} retransmits={} dups={} peer_down={} \
             recovery={} depth_hwm={} bytes_hwm={}",
            c.loss,
            u32::from(c.crashed),
            c.completed,
            c.retransmits,
            c.dups_suppressed,
            c.peer_down_events,
            c.recovery_ns
                .map(|n| format!("{:.1}ms", n as f64 / 1e6))
                .unwrap_or_else(|| "-".into()),
            c.depth_hwm,
            c.bytes_hwm,
        );
        print_link_faults(c);
    }

    let incomplete = cells.iter().filter(|c| !c.completed).count();
    assert_eq!(
        incomplete, 0,
        "{incomplete} campaign cells failed to recover"
    );

    let root = workspace_root();
    let path = root.join("BENCH_faults.json");
    std::fs::write(&path, to_json(&cells)).expect("write BENCH_faults.json");
    println!("wrote {}", path.display());
}
