//! One-page digest: re-runs a reduced-size version of every experiment and
//! prints the paper-vs-measured headline for each. The full-size harnesses
//! are the individual `--bin` targets; this is the smoke-test entry point.

use hpcnet::NodeAddr;
use vorx::objmgr::ObjMgrMode;
use vorx_apps::bitmap::{run_bitmap, BitmapParams};
use vorx_apps::download::{run_download, DownloadMode};
use vorx_apps::fft2d::{run_fft2d, Distribution, Fft2dParams};
use vorx_bench::*;

fn main() {
    println!("HPC/VORX reproduction — one-page summary (reduced sizes)\n");

    let t2 = table2_cell(4, 300);
    println!("T2   channel latency, 4B:            paper 303us      ours {t2:.0}us");
    let t2k = table2_cell(1024, 300);
    println!("T2   channel latency, 1024B:         paper 997us      ours {t2k:.0}us");
    let t1a = table1_cell(2, 4, 300);
    println!("T1   sliding window, 2 bufs, 4B:     paper 290us      ours {t1a:.0}us");
    let t1b = table1_cell(64, 4, 300);
    println!("T1   sliding window, 64 bufs, 4B:    paper 164us      ours {t1b:.0}us");
    println!(
        "THRU 1024B channel stream:           paper 1027kB/s   ours {:.0}kB/s",
        channel_stream_kbps(300)
    );

    let mut bp = BitmapParams::paper_900();
    bp.frames = 5;
    let bmp = run_bitmap(bp);
    println!(
        "BMP  bitmap streaming:               paper 3.2MB/s    ours {:.2}MB/s ({:.0}fps)",
        bmp.mbytes_per_sec, bmp.fps
    );

    println!(
        "CTX  context switch:                 paper 80us       ours {:.1}us",
        measured_ctx_switch_us()
    );

    let per = run_download(20, 100 * 1024, DownloadMode::PerProcessStub);
    let tree = run_download(20, 100 * 1024, DownloadMode::Tree);
    println!(
        "DL   download 20 nodes:              per-process {:.2}s, tree {:.2}s ({:.0}x)",
        per.as_secs_f64(),
        tree.as_secs_f64(),
        per.as_secs_f64() / tree.as_secs_f64()
    );

    let central = open_scaling(8, ObjMgrMode::Centralized(NodeAddr(0)));
    let distrib = open_scaling(8, ObjMgrMode::Distributed);
    println!(
        "OPEN 16 simultaneous opens:          centralized {:.2}ms, distributed {:.2}ms",
        central.as_ms_f64(),
        distrib.as_ms_f64()
    );

    let mc = run_fft2d(
        Fft2dParams {
            n: 32,
            p: 8,
            strategy: Distribution::Multicast,
        },
        7,
    );
    let pp = run_fft2d(
        Fft2dParams {
            n: 32,
            p: 8,
            strategy: Distribution::PointToPoint,
        },
        7,
    );
    println!(
        "FFT  32x32/8 redistribution:         multicast {:.1}ms, p2p {:.1}ms (both verified)",
        mc.distribute_max.as_ms_f64(),
        pp.distribute_max.as_ms_f64()
    );
    assert!(mc.max_err < 1e-6 && pp.max_err < 1e-6);

    let meglos: u32 = alloc_race(AllocPolicy::MeglosAutoFree, 20, 42).iter().sum();
    println!(
        "ALLOC 20 dev cycles x 2 users:       Meglos {meglos} 'not available' failures, VORX 0"
    );

    println!("\nfull-size harnesses: table1 table2 figure1 snet_flow download open_scaling");
    println!("fft_multicast bitmap_stream spice_latency ctx_switch alloc_race sharing");
    println!("conference scale1024 ablation  (see EXPERIMENTS.md)");
}
