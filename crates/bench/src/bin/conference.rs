//! G — the Rapport application (§1): real-time audio/video conferencing
//! between workstations on the HPC. No published numbers to match; this
//! demonstrates the capability the paper leads with — real-time media
//! between workstations with deadlines met.

use vorx_apps::conference::{run_conference, ConferenceParams};

fn main() {
    println!("== Rapport-style conference (E-RAPPORT, §1) ==\n");
    println!(
        "{:>9} {:>7} | {:>12} {:>12} {:>10} {:>8} | {:>12}",
        "conferees", "video", "audio mean", "audio max", "jitter", "misses", "video mean"
    );
    for (conferees, with_video) in [(2usize, false), (3, false), (3, true), (5, true), (8, true)] {
        let mut p = ConferenceParams::default_3way();
        p.conferees = conferees;
        p.with_video = with_video;
        p.duration_ms = 500;
        let r = run_conference(p);
        println!(
            "{:>9} {:>7} | {:>10.0}us {:>10.0}us {:>8.0}us {:>8} | {:>10.0}us",
            conferees,
            if with_video { "15fps" } else { "off" },
            r.audio.mean_latency_us,
            r.audio.max_latency_us,
            r.audio.jitter_us,
            r.audio.deadline_misses,
            r.video.mean_latency_us,
        );
    }
    println!("\naudio: 64B frames every 8ms (64 kbit/s), 20ms playout deadline;");
    println!("video: 8KB frames at 15 fps (~1 Mbit/s per stream), raw UDCO transport.");
}
