//! Calibration ablations: how the headline latencies respond when one
//! component of the 1988 cost model is changed. Ties each Table-2 term to a
//! physical cause (the decomposition DESIGN.md §6 claims).

use vorx::Calibration;
use vorx_bench::table2_cell_with;

fn main() {
    let n = 500;
    let base = Calibration::paper_1988();

    let mut no_ctx = base;
    no_ctx.ctx_switch_ns = 0;

    let mut fast_copy = base;
    fast_copy.fifo_read_ns_per_byte = 150;
    fast_copy.chan_sidebuf_ns_per_byte = 150;

    let mut slow_copy = base;
    slow_copy.fifo_read_ns_per_byte = 600;
    slow_copy.chan_sidebuf_ns_per_byte = 600;

    let zero = Calibration::instant();

    println!("== ABLATION: channel latency vs cost-model components ==");
    println!(
        "{:<34} {:>12} {:>12}",
        "calibration", "4B us/msg", "1024B us/msg"
    );
    for (name, c) in [
        ("paper 1988 (calibrated)", base),
        ("free context switches", no_ctx),
        ("2x faster kernel copies", fast_copy),
        ("2x slower kernel copies", slow_copy),
        ("all software free (hw only)", zero),
    ] {
        println!(
            "{:<34} {:>12.1} {:>12.1}",
            name,
            table2_cell_with(c, 4, n),
            table2_cell_with(c, 1024, n)
        );
    }
    println!();
    println!("reading the rows:");
    println!(" - the writer-resume context switch contributes ~80us to every message;");
    println!(" - the 1024B size slope is almost entirely kernel copy rate;");
    println!(" - with all software free, only wire time remains — the §1 claim that");
    println!("   software, not the HPC, dominates latency.");
}
