//! T1 — Table 1: "Message Latency for Reader-Active Communications
//! Protocol" (sliding window over a user-defined communications object).
//!
//! Regenerates every cell: buffers ∈ {1,2,4,8,16,32,64} × message size
//! ∈ {4,64,256,1024} bytes, 1000 messages per cell, exactly the paper's
//! methodology (elapsed / 1000).

use vorx_bench::report::{render, Row};
use vorx_bench::{table1_cell, TABLE1_BUFS, TABLE1_PAPER, TABLE_SIZES};

fn main() {
    let n = 1000;
    let mut rows = Vec::new();
    for (r, &bufs) in TABLE1_BUFS.iter().enumerate() {
        for (c, &len) in TABLE_SIZES.iter().enumerate() {
            let measured = table1_cell(bufs, len, n);
            rows.push(Row::new(
                format!("{bufs:>2} buffers, {len:>4}B msgs"),
                Some(TABLE1_PAPER[r][c]),
                measured,
                "us/msg",
            ));
        }
    }
    print!(
        "{}",
        render(
            "Table 1: sliding-window (reader-active) protocol latency",
            &rows
        )
    );
}
