//! Sharded-engine (PDES) campaign: how the asynchronous conservative engine
//! (earliest-input-time sync, per-link lookahead) scales with worker
//! threads, against the sequential engine baseline, on cross-cluster
//! channel workloads.
//!
//! Every endpoint of every cluster writes a paced message stream to its
//! counterpart endpoints in the next `FANOUT` clusters (and reads the
//! symmetric streams), so each shard is both producing and consuming
//! cross-shard traffic continuously. Node counts sweep up to the paper's
//! 70-node machine (10 clusters × 7 endpoints); worker counts sweep
//! {1, 2, 4, 8}; every cell also runs on the plain sequential engine.
//!
//! Determinism is asserted inside the campaign: for a given config, every
//! engine and worker count must report identical simulated end times and
//! delivered-frame counts (the `tests/pdes.rs` suite additionally proves the
//! traces are byte-identical).
//!
//! Parallel *wall-clock* speedup needs parallel hardware: `host_cpus` is the
//! **effective** parallelism — the CPU affinity mask actually granted to
//! this process, not the machine's core count — and worker threads are
//! pinned to distinct allowed CPUs whenever the mask grants enough of them.
//! The ≥2.5× 4-worker scaling gate on the 70-node cell is enforced only when
//! the host has ≥ 4 effective CPUs (a single-CPU host still validates
//! determinism and the ≥2× advantage over the sequential engine).
//!
//! Writes `BENCH_pdes.json` at the workspace root: per-cell wall-clock
//! medians, round/bridge/frontier-bump counters, per-worker stall
//! histograms (idle-spin vs yielded wall time), per-shard event counts, and
//! the speedup ratios.
//!
//! Usage:
//!   pdes_campaign            # full sweep + BENCH_pdes.json
//!   pdes_campaign --smoke    # one small config, workers {1, 4, 8} with
//!                            # tracing on: bit-identical traces + liveness
//!                            # under a deadlock watchdog that dumps every
//!                            # shard's frontier and mailbox depths (CI)

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use desim::{affinity, PdesMonitor, PdesStats, WorkerStall};
use vorx::hpcnet::{Fabric, NetConfig, NodeAddr, Payload, Topology};
use vorx::{channel, VCtx, VorxBuilder};
use vorx_bench::report::{render, Row};

/// Messages per channel.
const MSGS: u32 = 20;
/// Each node writes to its counterpart endpoint in the next `FANOUT`
/// clusters (and reads the symmetric streams coming the other way).
const FANOUT: usize = 3;
/// Payload bytes per message (synthetic: no host-side byte shuffling).
const MSG_BYTES: u32 = 64;
/// Wall-clock repeats per cell; the median is reported.
const REPEATS: usize = 3;
/// Workload seed (identical for every engine/worker cell, so the simulated
/// execution is identical and only the host wall-clock differs).
const SEED: u64 = 0x9DE5;

/// The configs swept: (clusters, endpoints per cluster).
const CONFIGS: [(usize, usize); 3] = [(4, 4), (6, 6), (10, 7)];
/// Worker counts swept on the sharded engine.
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Spawn the all-to-next-`FANOUT`-clusters workload through an arbitrary
/// spawner, so the identical spawn order runs on both engines.
fn spawn_workload(
    topo: &Topology,
    mut spawn: impl FnMut(NodeAddr, String, Box<dyn FnOnce(VCtx) + Send>),
) {
    let nc = topo.n_clusters();
    let mut clusters: Vec<Vec<NodeAddr>> = vec![Vec::new(); nc];
    for a in topo.endpoints() {
        clusters[topo.cluster_of(a).0 as usize].push(a);
    }
    let epc = clusters[0].len();
    for c in 0..nc {
        for (e, &wn) in clusters[c].iter().enumerate().take(epc) {
            for j in 1..=FANOUT.min(nc - 1) {
                let rn = clusters[(c + j) % nc][e];
                let name = format!("s{c}.{e}.{j}");
                let rname = name.clone();
                spawn(
                    wn,
                    format!("n{}:w{name}", wn.0),
                    Box::new(move |ctx| {
                        let ch = channel::open(&ctx, wn, &name);
                        for _ in 0..MSGS {
                            ch.write(&ctx, Payload::Synthetic(MSG_BYTES)).unwrap();
                        }
                    }),
                );
                spawn(
                    rn,
                    format!("n{}:r{rname}", rn.0),
                    Box::new(move |ctx| {
                        let ch = channel::open(&ctx, rn, &rname);
                        for _ in 0..MSGS {
                            ch.read(&ctx).unwrap();
                        }
                    }),
                );
            }
        }
    }
}

/// One measured cell.
struct Cell {
    /// 0 = sequential engine, otherwise sharded with this many workers.
    workers: usize,
    /// Whether the workers were pinned to distinct host CPUs.
    pinned: bool,
    /// Wall-clock per repeat, ns.
    wall_ns: Vec<u64>,
    /// Simulated end time, ns (must agree across every cell of a config).
    end_ns: u64,
    /// Frames delivered (must agree across every cell of a config).
    delivered: u64,
    /// Run segments executed across all shards (sharded cells only).
    rounds: u64,
    /// Cross-shard messages through the per-link mailboxes (sharded only).
    msgs_bridged: u64,
    /// Frontier advances published without local progress — the
    /// null-message traffic equivalent (sharded cells only).
    frontier_bumps: u64,
    /// Per-worker idle accounting from the last repeat (sharded only).
    worker_stalls: Vec<WorkerStall>,
    /// Events dispatched per shard (sharded cells only).
    events_per_shard: Vec<u64>,
}

fn median(xs: &mut [u64]) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// A slot the deadlock watchdog inspects on expiry: the active run parks its
/// engine monitor here, so a hung run dumps every shard's frontier and
/// mailbox depths before the abort.
type MonitorSlot = Arc<Mutex<Option<PdesMonitor>>>;

/// One wall-clock sample of the sequential engine.
fn run_sequential_once(clusters: usize, epc: usize) -> (u64, u64, u64) {
    let topo = Topology::incomplete_hypercube(clusters, epc).expect("valid hypercube");
    let mut v = VorxBuilder::with_topology(topo.clone())
        .seed(SEED)
        .trace(false)
        .build();
    spawn_workload(&topo, |_, name, f| {
        v.spawn(name, f);
    });
    let t0 = Instant::now();
    let end = v.run_all();
    let wall = t0.elapsed().as_nanos() as u64;
    let delivered = v.world().net.stats.frames_delivered;
    (wall, end.as_ns(), delivered)
}

/// One wall-clock sample of the sharded engine.
fn run_sharded_once(
    clusters: usize,
    epc: usize,
    workers: usize,
    pin: bool,
    slot: &MonitorSlot,
) -> (u64, u64, u64, PdesStats) {
    let topo = Topology::incomplete_hypercube(clusters, epc).expect("valid hypercube");
    let mut v = VorxBuilder::with_topology(topo.clone())
        .seed(SEED)
        .trace(false)
        .build_sharded(workers);
    v.pin_workers(pin);
    spawn_workload(&topo, |node, name, f| {
        v.spawn_at(node, name, f);
    });
    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v.monitor());
    let t0 = Instant::now();
    let end = v.run_all();
    let wall = t0.elapsed().as_nanos() as u64;
    *slot.lock().unwrap_or_else(|e| e.into_inner()) = None;
    let delivered = v.sum_over_shards(|w| w.net.stats.frames_delivered);
    (wall, end.as_ns(), delivered, v.stats().clone())
}

/// Run a cell `REPEATS` times; keep per-repeat wall clocks and the (stable)
/// simulated outcome.
fn run_cell(clusters: usize, epc: usize, workers: usize, slot: &MonitorSlot) -> Cell {
    // Pinning only helps when each worker can own a distinct CPU.
    let pin = workers > 1 && affinity::effective_parallelism() >= workers;
    let mut cell = Cell {
        workers,
        pinned: pin && workers > 0,
        wall_ns: Vec::new(),
        end_ns: 0,
        delivered: 0,
        rounds: 0,
        msgs_bridged: 0,
        frontier_bumps: 0,
        worker_stalls: Vec::new(),
        events_per_shard: Vec::new(),
    };
    for rep in 0..REPEATS {
        if workers == 0 {
            let (wall, end, delivered) = run_sequential_once(clusters, epc);
            cell.wall_ns.push(wall);
            cell.end_ns = end;
            cell.delivered = delivered;
        } else {
            let (wall, end, delivered, stats) = run_sharded_once(clusters, epc, workers, pin, slot);
            cell.wall_ns.push(wall);
            cell.end_ns = end;
            cell.delivered = delivered;
            if rep == 0 {
                cell.rounds = stats.rounds;
                cell.msgs_bridged = stats.msgs_bridged;
                cell.frontier_bumps = stats.frontier_bumps;
                cell.events_per_shard = stats.events_per_shard.clone();
            }
            // Stall accounting is host-timing noise; keep the last repeat.
            cell.worker_stalls = stats.worker_stalls.clone();
        }
    }
    cell
}

/// One config's cells: sequential baseline plus the worker sweep.
struct ConfigResult {
    clusters: usize,
    epc: usize,
    nodes: usize,
    /// Minimum per-pair lookahead of the config (ns) — the per-link matrix
    /// entries vary by cluster distance; this is their floor.
    min_lookahead_ns: u64,
    cells: Vec<Cell>,
}

impl ConfigResult {
    /// Median wall-clock of the cell with this worker count (0 = sequential).
    fn med(&self, workers: usize) -> u64 {
        let c = self
            .cells
            .iter()
            .find(|c| c.workers == workers)
            .expect("swept cell");
        median(&mut c.wall_ns.clone())
    }
}

fn run_config(clusters: usize, epc: usize, slot: &MonitorSlot) -> ConfigResult {
    let topo = Topology::incomplete_hypercube(clusters, epc).expect("valid hypercube");
    let nodes = topo.n_endpoints();
    let min_lookahead_ns = Fabric::new(topo, NetConfig::paper_1988())
        .lookahead_ns()
        .unwrap_or(0);
    let mut cells = vec![run_cell(clusters, epc, 0, slot)];
    for workers in WORKER_SWEEP {
        cells.push(run_cell(clusters, epc, workers, slot));
    }
    // Worker count must be semantically invisible: every sharded cell
    // reports the same simulated outcome. (The sequential engine is the
    // wall-clock baseline only — its cross-cluster frames ride the full
    // store-and-forward fabric, while bridged frames use the static
    // link-latency model, so its simulated end time differs by design.)
    for c in &cells[2..] {
        assert_eq!(
            (c.end_ns, c.delivered),
            (cells[1].end_ns, cells[1].delivered),
            "cell (workers={}) diverged from workers=1",
            c.workers
        );
    }
    assert_eq!(
        cells[0].delivered, cells[1].delivered,
        "engines must deliver the same frames"
    );
    assert!(cells[0].delivered > 0, "workload delivered nothing");
    ConfigResult {
        clusters,
        epc,
        nodes,
        min_lookahead_ns,
        cells,
    }
}

/// Walk up from cwd until the directory holding `Cargo.lock`.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}

/// Emit the campaign as hand-rolled JSON (same convention as the other
/// BENCH_*.json reports: no serde dependency on the output path).
fn to_json(host_cpus: usize, configs: &[ConfigResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"note\": \"PDES campaign: asynchronous conservative sharded engine \
         (earliest-input-time sync, per-link lookahead) vs the sequential engine on \
         cross-cluster channel workloads; wall-clock parallel speedup requires parallel \
         host hardware (host_cpus = effective CPU affinity mask)\",\n",
    );
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str(&format!(
        "  \"workload\": {{ \"msgs_per_channel\": {MSGS}, \"bytes_per_message\": {MSG_BYTES}, \
         \"fanout_clusters\": {FANOUT}, \"repeats\": {REPEATS}, \"seed\": {SEED} }},\n",
    ));
    out.push_str("  \"configs\": [\n");
    for (i, cfg) in configs.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"nodes\": {}, \"clusters\": {}, \"endpoints_per_cluster\": {}, \
             \"min_lookahead_ns\": {}, \"sim_end_ns_sequential\": {}, \"sim_end_ns_sharded\": {}, \
             \"frames_delivered\": {},\n",
            cfg.nodes,
            cfg.clusters,
            cfg.epc,
            cfg.min_lookahead_ns,
            cfg.cells[0].end_ns,
            cfg.cells[1].end_ns,
            cfg.cells[0].delivered,
        ));
        out.push_str("      \"cells\": [\n");
        for (j, c) in cfg.cells.iter().enumerate() {
            let walls = c
                .wall_ns
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            let events = c
                .events_per_shard
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            let stalls = c
                .worker_stalls
                .iter()
                .map(|s| {
                    format!(
                        "{{ \"spin_ns\": {}, \"yield_ns\": {}, \"stalls\": {}, \
                         \"yields\": {} }}",
                        s.spin_ns, s.yield_ns, s.stalls, s.yields
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            let engine = if c.workers == 0 {
                "sequential".to_string()
            } else {
                format!("sharded-{}w", c.workers)
            };
            out.push_str(&format!(
                "        {{ \"engine\": \"{engine}\", \"workers\": {}, \"pinned\": {}, \
                 \"median_wall_ns\": {}, \"wall_ns\": [{walls}], \"rounds\": {}, \
                 \"msgs_bridged\": {}, \"frontier_bumps\": {}, \
                 \"worker_stalls\": [{stalls}], \
                 \"events_per_shard\": [{events}] }}{}\n",
                c.workers,
                c.pinned,
                median(&mut c.wall_ns.clone()),
                c.rounds,
                c.msgs_bridged,
                c.frontier_bumps,
                if j + 1 == cfg.cells.len() { "" } else { "," },
            ));
        }
        out.push_str("      ],\n");
        out.push_str(&format!(
            "      \"speedup_4w_vs_sequential\": {:.3}, \"speedup_4w_vs_1w\": {:.3}, \
             \"speedup_8w_vs_1w\": {:.3} }}{}\n",
            cfg.med(0) as f64 / cfg.med(4) as f64,
            cfg.med(1) as f64 / cfg.med(4) as f64,
            cfg.med(1) as f64 / cfg.med(8) as f64,
            if i + 1 == configs.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run `f` with a wall-clock watchdog: if the campaign fails to finish in
/// `secs`, dump the active engine's frontiers and mailbox depths (the
/// conservative-sync equivalent of a deadlock backtrace) and abort loudly
/// instead of hanging CI.
fn with_watchdog<T>(secs: u64, slot: &MonitorSlot, f: impl FnOnce() -> T) -> T {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    let watch = Arc::clone(slot);
    std::thread::spawn(move || {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(secs);
        while std::time::Instant::now() < deadline {
            if flag.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        eprintln!("pdes campaign: watchdog expired after {secs}s — a run failed to reach idle");
        if let Some(m) = watch.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
            eprintln!("engine state at expiry:\n{}", m.dump());
        }
        std::process::abort();
    });
    let r = f();
    done.store(true, Ordering::Relaxed);
    r
}

/// Smoke mode: the small config with tracing ON, workers {1, 4, 8} — the
/// simulated execution must be bit-identical, nothing may park, and the
/// sharded plumbing counters must be live. Fast enough for every CI run.
fn smoke() {
    let (clusters, epc) = CONFIGS[0];
    let slot: MonitorSlot = Arc::default();
    let run = |workers: usize| {
        let topo = Topology::incomplete_hypercube(clusters, epc).expect("valid hypercube");
        let mut v = VorxBuilder::with_topology(topo.clone())
            .seed(SEED)
            .build_sharded(workers);
        spawn_workload(&topo, |node, name, f| {
            v.spawn_at(node, name, f);
        });
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v.monitor());
        let end = v.run_all();
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = None;
        let delivered = v.sum_over_shards(|w| w.net.stats.frames_delivered);
        let depth_hwm = (0..v.n_shards())
            .map(|k| v.world(k).net.max_port_link_depth_hwm())
            .max()
            .unwrap_or(0);
        let stats = v.stats().clone();
        (v.merged_trace().to_json(), end, delivered, stats, depth_hwm)
    };
    let ((t1, e1, d1, s1, h1), (t4, e4, d4, s4, h4), (t8, e8, d8, _s8, _h8)) =
        with_watchdog(120, &slot, || (run(1), run(4), run(8)));
    assert_eq!(h1, h4, "smoke: queue-depth high-water marks diverged");
    assert_eq!(e1, e4, "smoke: end times diverged at 1 vs 4 workers");
    assert_eq!(e1, e8, "smoke: end times diverged at 1 vs 8 workers");
    assert_eq!(d1, d4, "smoke: deliveries diverged at 1 vs 4 workers");
    assert_eq!(d1, d8, "smoke: deliveries diverged at 1 vs 8 workers");
    assert_eq!(t1, t4, "smoke: traces diverged at 1 vs 4 workers");
    assert_eq!(t1, t8, "smoke: traces diverged at 1 vs 8 workers");
    assert!(d1 > 0, "smoke: nothing delivered");
    assert!(s1.msgs_bridged > 0, "smoke: no cross-shard traffic");
    assert!(
        s1.events_per_shard.iter().all(|&e| e > 0),
        "smoke: idle shard"
    );
    let spin_ms: f64 = s4
        .worker_stalls
        .iter()
        .map(|s| s.spin_ns as f64)
        .sum::<f64>()
        / 1e6;
    let yield_ms: f64 = s4
        .worker_stalls
        .iter()
        .map(|s| s.yield_ns as f64)
        .sum::<f64>()
        / 1e6;
    println!(
        "pdes-campaign smoke OK: {clusters}x{epc} nodes, {} frames delivered, \
         {} rounds, {} bridged, {} frontier bumps, depth hwm {} slots, trace \
         bit-identical at 1 vs 4 vs 8 workers (4w idle: {spin_ms:.2} ms spin, \
         {yield_ms:.2} ms yielded)",
        d1, s1.rounds, s1.msgs_bridged, s1.frontier_bumps, h1,
    );
    println!("  events per shard: {:?}", s1.events_per_shard);
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let host_cpus = affinity::effective_parallelism();
    let slot: MonitorSlot = Arc::default();
    let configs: Vec<ConfigResult> = with_watchdog(540, &slot, || {
        CONFIGS
            .iter()
            .map(|&(c, e)| run_config(c, e, &slot))
            .collect()
    });

    let mut rows = Vec::new();
    for cfg in &configs {
        let seq_med = cfg.med(0);
        for c in &cfg.cells {
            let med = median(&mut c.wall_ns.clone());
            let label = if c.workers == 0 {
                format!("{:>2} nodes sequential", cfg.nodes)
            } else {
                format!(
                    "{:>2} nodes {}w ({:.2}x)",
                    cfg.nodes,
                    c.workers,
                    seq_med as f64 / med as f64
                )
            };
            rows.push(Row::new(label, None, med as f64 / 1e6, "ms wall"));
        }
    }
    print!(
        "{}",
        render(
            &format!(
                "pdes campaign: {MSGS} x {MSG_BYTES} B per channel, fanout {FANOUT} clusters, \
                 host CPUs {host_cpus}"
            ),
            &rows,
        )
    );
    for cfg in &configs {
        for c in cfg.cells.iter().filter(|c| c.workers > 0) {
            let idle_ms: f64 = c
                .worker_stalls
                .iter()
                .map(|s| (s.spin_ns + s.yield_ns) as f64)
                .sum::<f64>()
                / 1e6;
            println!(
                "{:>2} nodes, {} workers{}: {} rounds, {} bridged, {} bumps, \
                 idle {:.2} ms, events/shard {:?}",
                cfg.nodes,
                c.workers,
                if c.pinned { " (pinned)" } else { "" },
                c.rounds,
                c.msgs_bridged,
                c.frontier_bumps,
                idle_ms,
                c.events_per_shard,
            );
        }
    }

    let root = workspace_root();
    let path = root.join("BENCH_pdes.json");
    std::fs::write(&path, to_json(host_cpus, &configs)).expect("write BENCH_pdes.json");
    println!("wrote {}", path.display());

    // The ≥2× gate on the 70-node cell: the sharded engine at 4 workers
    // against the sequential engine it replaces. The bridged data path wins
    // even single-threaded (bridged frames skip the per-hop
    // store-and-forward event cascade), so this holds on any host.
    let big = configs.last().expect("nonempty sweep");
    let speedup = big.med(0) as f64 / big.med(4) as f64;
    assert!(
        speedup >= 2.0,
        "70-node cell: 4 workers ran only {speedup:.2}x faster than the sequential engine"
    );
    println!("70-node speedup, 4 workers vs sequential engine: {speedup:.2}x (gate: >= 2x)");
    // Parallel *scaling* (4 workers vs 1) additionally needs parallel
    // hardware; record it, and only enforce it where it can exist.
    let scaling = big.med(1) as f64 / big.med(4) as f64;
    if host_cpus >= 4 {
        assert!(
            scaling >= 2.5,
            "70-node cell: asynchronous sync must scale — 4 workers only \
             {scaling:.2}x over 1 on a {host_cpus}-CPU host (gate: >= 2.5x)"
        );
        println!("70-node scaling, 4 workers vs 1: {scaling:.2}x (gate: >= 2.5x)");
    } else {
        println!(
            "70-node scaling, 4 workers vs 1: {scaling:.2}x — host has {host_cpus} \
             effective CPU(s), parallel scaling not enforced"
        );
    }
}
