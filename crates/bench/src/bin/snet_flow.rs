//! E-SNET — §2 "Hardware Flow Control": the S/NET many-to-one overload
//! study and the recovery schemes the paper evaluated, against the HPC's
//! hardware flow control.
//!
//! Paper claims reproduced:
//! * busy retry on long messages → **lockout** ("some of the messages were
//!   never received");
//! * 12 senders x 150-byte messages never overflow the 2048-byte FIFO;
//! * random backoff completes but "runs at the timeout rate; at least an
//!   order of magnitude slower" than the no-contention bus;
//! * the reservation protocol eliminates overflow but "would increase
//!   latency for all messages";
//! * on the HPC, the same blast simply works.

use snet::{SnetConfig, SnetSim, Strategy};
use vorx_apps::patterns::many_to_one;

const SEC: u64 = 1_000_000_000;

fn burst(strategy: Strategy, senders: usize, len: u32, count: u64) -> snet::SnetReport {
    let mut sim = SnetSim::new(SnetConfig::paper_1985(), senders + 1, strategy, 42);
    for s in 1..=senders {
        sim.enqueue(s, 0, len, count, 0);
    }
    sim.run(60 * SEC)
}

fn main() {
    println!("== E-SNET: S/NET flow-control recovery under many-to-one load ==");
    println!("   load: 11 senders -> 1 receiver, 1024B messages, 20 each\n");
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>14}",
        "strategy", "delivered", "undelivered", "rejects", "last delivery"
    );
    for strategy in [
        Strategy::BusyRetry,
        Strategy::RandomBackoff,
        Strategy::Reservation,
    ] {
        let r = burst(strategy, 11, 1024, 20);
        println!(
            "{:<16} {:>10} {:>12} {:>12} {:>11.1}ms{}",
            strategy.to_string(),
            r.delivered_total,
            r.undelivered,
            r.rejects,
            r.last_delivery_ns as f64 / 1e6,
            if r.completed { "" } else { "   <-- LOCKOUT" },
        );
    }

    // The Meglos workaround: limit message length so overflow cannot occur.
    let limited = burst(Strategy::BusyRetry, 12, 150, 1);
    println!(
        "\n12 senders x 150B (the Meglos length-limit workaround): delivered {}, rejects {} (paper: never overflows)",
        limited.delivered_total, limited.rejects
    );

    // Reservation taxes the uncontended case too.
    let plain = burst(Strategy::BusyRetry, 1, 256, 1);
    let resv = burst(Strategy::Reservation, 1, 256, 1);
    println!(
        "single uncontended 256B message: busy-retry {:.0}us vs reservation {:.0}us (+{:.0}us protocol tax)",
        plain.delivered[0][0].0 as f64 / 1e3,
        resv.delivered[0][0].0 as f64 / 1e3,
        (resv.delivered[0][0].0 - plain.delivered[0][0].0) as f64 / 1e3
    );

    // And the HPC: hardware flow control, nothing to recover from.
    let hpc = many_to_one(11, 20, 1024);
    println!(
        "\nsame blast on HPC/VORX channels: delivered {} / {} in {:.1}ms ({:.2} MB/s) — \"loss of messages due to buffer overflow [is] impossible\"",
        hpc.delivered,
        hpc.delivered,
        hpc.elapsed.as_ms_f64(),
        hpc.mbytes_per_sec
    );
}
