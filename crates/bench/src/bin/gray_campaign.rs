//! Gray-failure campaign: degraded-but-alive links — latency inflation
//! with seeded jitter, asymmetric (one-direction) degradation, flap trains
//! at two rates, and a primary-gateway outage — swept over the sharded
//! engine at workers {1, 4} on a two-level redundant hierarchy.
//!
//! The machine is `hierarchical_hypercube_redundant(&[4, 2], 2)`: two
//! groups of four clusters, two endpoints per cluster, and a *standby*
//! gateway class so the inter-group role can fail over without detours.
//! Four paced streams cross every interesting edge: the degraded cable,
//! the flapping cable, and the gateway in both directions.
//!
//! Oracles, checked at quiescence in every cell:
//!
//! 1. exactly-once FIFO delivery on every stream, no stuck processes;
//! 2. **no false `PeerDown`**: under pure delay (no loss, no downs) a
//!    degraded-but-live peer is never declared down or partitioned —
//!    `peer_down_events == 0 && partitions == 0`;
//! 3. **bounded spurious retransmits**: under pure delay the adaptive
//!    Jacobson/Karn timers keep retransmissions within a small
//!    bootstrap/ramp allowance instead of one-per-write forever;
//! 4. flap cells: the fast train trips flap damping (`flaps > 0`) and the
//!    slow train — spaced wider than `flap_window_ns` — does not;
//! 5. membership convergence: every node up, no partition marks, no
//!    probes in flight;
//! 6. workers 1 and 4 produce bit-identical merged traces.
//!
//! Writes `BENCH_gray.json` at the workspace root.
//!
//! Usage:
//!   gray_campaign            # full sweep + BENCH_gray.json
//!   gray_campaign --smoke    # reduced sweep under a wall-clock watchdog

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use desim::{FaultSchedule, SimDuration, SimTime};
use vorx::hpcnet::{ClusterId, Fabric, NetConfig, NodeAddr, Payload, Topology};
use vorx::{channel, FaultStats, VCtx, VorxBuilder, VorxShardedSim};

/// Hierarchy shape: two groups of four clusters.
const LEVELS: [usize; 2] = [4, 2];
/// Endpoints per cluster.
const EPS: usize = 2;
/// Gap between stream writes.
const PACE_NS: u64 = 4_000_000;
/// The degraded cable (intra-group, group 0).
const DEG_CABLE: (u32, u32) = (0, 1);
/// The flapping cable (intra-group, group 0).
const FLAP_CABLE: (u32, u32) = (2, 3);
/// The primary inter-group gateway cable (standby is 1–5).
const GW_CABLE: (u32, u32) = (0, 4);

fn topo() -> Topology {
    Topology::hierarchical_hypercube_redundant(&LEVELS, EPS).expect("valid machine")
}

/// Endpoints of cluster `c`, in address order.
fn nodes_of(t: &Topology, c: u32) -> Vec<NodeAddr> {
    t.endpoints()
        .filter(|&n| t.cluster_of(n) == ClusterId(c))
        .collect()
}

/// Both directed link ids of the cluster cable `a`–`b`.
fn cable(a: u32, b: u32) -> [u32; 2] {
    let f = Fabric::new(topo(), NetConfig::paper_1988());
    [
        f.cluster_link(ClusterId(a), ClusterId(b)).expect("wired").0,
        f.cluster_link(ClusterId(b), ClusterId(a)).expect("wired").0,
    ]
}

/// Every cluster cable the campaign streams can cross, both directions.
fn all_cables() -> Vec<u32> {
    let pairs = [
        (0, 1),
        (0, 2),
        (1, 3),
        (2, 3),
        (4, 5),
        (4, 6),
        (5, 7),
        (6, 7),
        GW_CABLE,
        (1, 5), // the standby gateway class
    ];
    pairs.iter().flat_map(|&(a, b)| cable(a, b)).collect()
}

/// One campaign cell: a named fault script plus the oracles it arms.
struct Cell {
    name: &'static str,
    schedule: fn(u64) -> FaultSchedule,
    /// Pure-delay cell: arm the no-false-`PeerDown` and retransmit-bound
    /// oracles (nothing in the script loses or downs anything).
    pure_delay: bool,
    /// Ceiling on total retransmits (bootstrap + severe-ramp allowance)
    /// for pure-delay cells; `u64::MAX` disarms the bound.
    retx_bound: u64,
    /// The script must (fast train) or must not (slow train) trip damping.
    expect_flaps: Option<bool>,
}

/// Symmetric moderate inflation on every cable: ~20 µs per transit — far
/// past clean latency, far under the RTO floor. Steady state must be
/// retransmit-free.
fn sched_moderate(seed: u64) -> FaultSchedule {
    let mut s = FaultSchedule::new(seed);
    for l in all_cables() {
        s = s.degrade(
            l,
            SimTime::from_ns(2_000_000),
            SimTime::from_ns(60_000_000_000),
            40.0,
            2_000,
        );
    }
    s
}

/// The ramp the adaptive timers exist for: moderate (1 ms per transit,
/// sampleable) long enough to bootstrap the estimators, then severe
/// (50 ms per transit — cross-group RTT ≈ 400 ms, past the fixed 20 ms
/// base and deep into the old false-positive regime) for the rest of the
/// run. Every write must complete; the peer is never down.
fn sched_severe_ramp(seed: u64) -> FaultSchedule {
    let mut s = FaultSchedule::new(seed);
    for l in all_cables() {
        s = s
            .degrade(
                l,
                SimTime::from_ns(2_000_000),
                SimTime::from_ns(40_000_000),
                2_000.0,
                10_000,
            )
            .degrade(
                l,
                SimTime::from_ns(40_000_000),
                SimTime::from_ns(60_000_000_000),
                100_000.0,
                10_000,
            );
    }
    s
}

/// Asymmetric: only the forward direction of one cable inflates; acks ride
/// a clean return path. Latency stats and timers must handle the
/// per-direction split.
fn sched_asym(seed: u64) -> FaultSchedule {
    FaultSchedule::new(seed).degrade(
        cable(DEG_CABLE.0, DEG_CABLE.1)[0],
        SimTime::from_ns(2_000_000),
        SimTime::from_ns(60_000_000_000),
        2_000.0,
        10_000,
    )
}

/// Slow flap train: transitions 30 ms apart — wider than the 50 ms window
/// needs for three downs, so damping must *not* engage.
fn sched_flap_slow(seed: u64) -> FaultSchedule {
    let mut s = FaultSchedule::new(seed);
    for l in cable(FLAP_CABLE.0, FLAP_CABLE.1) {
        s = s.flap_link(l, SimTime::from_ns(10_000_000), 30_000_000, 3);
    }
    s
}

/// Fast flap train: transitions 4 ms apart — three downs land inside the
/// 50 ms window, damping holds the link down and routing detours around
/// it until the train ends plus the hold.
fn sched_flap_fast(seed: u64) -> FaultSchedule {
    let mut s = FaultSchedule::new(seed);
    for l in cable(FLAP_CABLE.0, FLAP_CABLE.1) {
        s = s.flap_link(l, SimTime::from_ns(10_000_000), 4_000_000, 5);
    }
    s
}

/// Primary gateway outage: both directions of the 0–4 cable die mid-run
/// and heal later. `recompute` re-wires the inter-group role onto the
/// standby class (1–5), so cross-group streams keep flowing and no
/// partition is ever declared.
fn sched_gateway(seed: u64) -> FaultSchedule {
    let mut s = FaultSchedule::new(seed);
    for l in cable(GW_CABLE.0, GW_CABLE.1) {
        s = s
            .link_down_at(l, SimTime::from_ns(10_000_000))
            .link_up_at(l, SimTime::from_ns(80_000_000));
    }
    s
}

const CELLS: [Cell; 6] = [
    Cell {
        name: "delay-moderate-sym",
        schedule: sched_moderate,
        pure_delay: true,
        retx_bound: 8,
        expect_flaps: None,
    },
    Cell {
        name: "delay-severe-ramp",
        schedule: sched_severe_ramp,
        pure_delay: true,
        retx_bound: 96,
        expect_flaps: None,
    },
    Cell {
        name: "delay-asym",
        schedule: sched_asym,
        pure_delay: true,
        retx_bound: 8,
        expect_flaps: None,
    },
    Cell {
        name: "flap-slow",
        schedule: sched_flap_slow,
        pure_delay: false,
        retx_bound: u64::MAX,
        expect_flaps: Some(false),
    },
    Cell {
        name: "flap-fast",
        schedule: sched_flap_fast,
        pure_delay: false,
        retx_bound: u64::MAX,
        expect_flaps: Some(true),
    },
    Cell {
        name: "gateway-failover",
        schedule: sched_gateway,
        pure_delay: false,
        retx_bound: u64::MAX,
        expect_flaps: None,
    },
];

/// Everything one `(cell, seed, workers)` run produced.
struct RunOutcome {
    trace: String,
    end_ns: u64,
    delivered: u32,
    done: u32,
    expected_done: u32,
    fifo_ok: bool,
    membership_ok: bool,
    stats: FaultStats,
    flaps: u64,
    downs: u64,
    rtt_samples: u64,
    lat_min_ns: u64,
    lat_max_ns: u64,
    lat_mean_ns: u64,
    lat_count: u64,
}

/// Payload carrying its stream sequence number.
fn msg_payload(i: u32) -> Payload {
    let mut buf = vec![0u8; 64];
    buf[..4].copy_from_slice(&i.to_le_bytes());
    Payload::copy_from(&buf)
}

fn index_of(p: &Payload) -> u32 {
    let b = p.bytes().expect("data payload");
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Run one cell at `workers`, oracles evaluated at quiescence.
fn run_once(cell: &Cell, seed: u64, workers: usize, msgs: u32) -> RunOutcome {
    let t = topo();
    let mut v: VorxShardedSim = VorxBuilder::with_topology(t.clone())
        .seed(seed)
        .faults((cell.schedule)(seed))
        .build_sharded(workers);

    let done = Arc::new(AtomicU32::new(0));
    let fifo_ok = Arc::new(AtomicBool::new(true));
    let delivered = Arc::new(AtomicU32::new(0));
    // Streams across every interesting edge: the degraded cable, the
    // flapping cable, and the gateway in both directions.
    let streams: Vec<(NodeAddr, NodeAddr, String)> = vec![
        (
            nodes_of(&t, DEG_CABLE.0)[0],
            nodes_of(&t, DEG_CABLE.1)[0],
            "gray.deg".into(),
        ),
        (
            nodes_of(&t, FLAP_CABLE.0)[1],
            nodes_of(&t, FLAP_CABLE.1)[1],
            "gray.flap".into(),
        ),
        (nodes_of(&t, 3)[0], nodes_of(&t, 5)[0], "gray.xg".into()),
        (nodes_of(&t, 6)[0], nodes_of(&t, 2)[0], "gray.gx".into()),
    ];
    let expected_done = 2 * streams.len() as u32;
    for (wn, rn, name) in streams {
        let rname = name.clone();
        let (f_ok, del, d1, d2) = (
            Arc::clone(&fifo_ok),
            Arc::clone(&delivered),
            Arc::clone(&done),
            Arc::clone(&done),
        );
        v.spawn_at(wn, format!("n{}:w:{name}", wn.0), move |ctx: VCtx| {
            let ch = channel::open(&ctx, wn, &name);
            for i in 0..msgs {
                ctx.sleep(SimDuration::from_ns(PACE_NS));
                ch.write(&ctx, msg_payload(i)).expect("writer failed");
            }
            d1.fetch_add(1, Ordering::Relaxed);
        });
        v.spawn_at(rn, format!("n{}:r:{rname}", rn.0), move |ctx: VCtx| {
            let ch = channel::open(&ctx, rn, &rname);
            for expect in 0..msgs {
                let i = index_of(&ch.read(&ctx).expect("reader failed"));
                if i != expect {
                    f_ok.store(false, Ordering::Relaxed);
                }
                del.fetch_add(1, Ordering::Relaxed);
            }
            d2.fetch_add(1, Ordering::Relaxed);
        });
    }

    let end = v.run_all();
    let trace = v.merged_trace().to_json();

    let mut stats = FaultStats::default();
    let mut membership_ok = true;
    let (mut flaps, mut downs) = (0u64, 0u64);
    let (mut lat_min, mut lat_max, mut lat_sum, mut lat_count) = (u64::MAX, 0u64, 0u64, 0u64);
    let mut rtt_samples = 0u64;
    for k in 0..v.n_shards() {
        let w = v.world(k);
        let s = &w.faults.stats;
        stats.retransmits += s.retransmits;
        stats.peer_down_events += s.peer_down_events;
        stats.partitions += s.partitions;
        stats.probes_sent += s.probes_sent;
        stats.heals += s.heals;
        stats.dups_suppressed += s.dups_suppressed;
        stats.overload_rideouts += s.overload_rideouts;
        for ls in w.link_fault_stats().values() {
            flaps += ls.flaps;
            downs += ls.downs;
            if ls.lat_count > 0 {
                lat_min = lat_min.min(ls.lat_min_ns);
                lat_max = lat_max.max(ls.lat_max_ns);
                lat_sum += ls.lat_sum_ns;
                lat_count += ls.lat_count;
            }
        }
        for n in w.nodes.iter() {
            if !(n.up && n.mbr.partitioned.is_empty() && n.mbr.probing.is_empty()) {
                membership_ok = false;
            }
            rtt_samples += n.chans.values().map(|e| e.rtt.samples()).sum::<u64>();
        }
    }
    RunOutcome {
        trace,
        end_ns: end.as_ns(),
        delivered: delivered.load(Ordering::Relaxed),
        done: done.load(Ordering::Relaxed),
        expected_done,
        fifo_ok: fifo_ok.load(Ordering::Relaxed),
        membership_ok,
        stats,
        flaps,
        downs,
        rtt_samples,
        lat_min_ns: if lat_count == 0 { 0 } else { lat_min },
        lat_max_ns: lat_max,
        lat_mean_ns: lat_sum.checked_div(lat_count).unwrap_or(0),
        lat_count,
    }
}

/// One campaign cell at one seed: workers 1 and 4, traces compared.
struct CellResult {
    name: &'static str,
    seed: u64,
    msgs: u32,
    pure_delay: bool,
    retx_bound: u64,
    expect_flaps: Option<bool>,
    trace_identical: bool,
    run: RunOutcome,
}

impl CellResult {
    /// Every violated oracle, by name. Empty means the cell is clean.
    fn violations(&self) -> Vec<&'static str> {
        let r = &self.run;
        let mut v = Vec::new();
        if !r.fifo_ok {
            v.push("fifo");
        }
        if r.done != r.expected_done {
            v.push("stuck-process");
        }
        if !r.membership_ok {
            v.push("membership-convergence");
        }
        if !self.trace_identical {
            v.push("worker-determinism");
        }
        if self.pure_delay {
            // A delayed-but-live peer must never be declared down or
            // partitioned, and the adaptive timers must keep spurious
            // retransmits within the bootstrap allowance.
            if r.stats.peer_down_events > 0 || r.stats.partitions > 0 {
                v.push("false-peer-down");
            }
            if r.stats.retransmits > self.retx_bound {
                v.push("spurious-retransmits");
            }
            if r.rtt_samples == 0 {
                v.push("estimators-never-armed");
            }
            if r.lat_count == 0 {
                v.push("latency-stats-missing");
            }
        }
        match self.expect_flaps {
            Some(true) if r.flaps == 0 => v.push("damping-never-tripped"),
            Some(false) if r.flaps > 0 => v.push("damping-tripped-spuriously"),
            _ => {}
        }
        if !self.pure_delay {
            // Flap and failover cells must actually churn the timeline
            // (bridged frames model no link churn — DESIGN.md §12 — so the
            // evidence is the recorded downs, the damper, and healed
            // marks, not retransmits), and every transient mark must heal.
            if r.downs == 0 {
                v.push("no-churn-exercised");
            }
            if r.stats.partitions != r.stats.heals {
                v.push("unhealed-partition");
            }
        }
        v
    }
}

fn run_cell(cell: &Cell, seed: u64, msgs: u32) -> CellResult {
    let r1 = run_once(cell, seed, 1, msgs);
    let r4 = run_once(cell, seed, 4, msgs);
    let trace_identical = r1.trace == r4.trace
        && r1.end_ns == r4.end_ns
        && r1.stats.retransmits == r4.stats.retransmits
        && r1.flaps == r4.flaps;
    CellResult {
        name: cell.name,
        seed,
        msgs,
        pure_delay: cell.pure_delay,
        retx_bound: cell.retx_bound,
        expect_flaps: cell.expect_flaps,
        trace_identical,
        run: r1,
    }
}

fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}

/// Hand-rolled JSON, same convention as the other BENCH_*.json reports.
fn to_json(cells: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"note\": \"gray failures: latency inflation x asymmetry x flap rate x gateway \
         outage on a [4,2]x2 redundant hierarchy, sharded engine, workers {1,4}\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": {{ \"levels\": [4, 2], \"endpoints_per_cluster\": {EPS}, \
         \"streams\": 4, \"pace_ns\": {PACE_NS} }},\n",
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.run;
        let viol = c
            .violations()
            .iter()
            .map(|v| format!("\"{v}\""))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{ \"cell\": \"{}\", \"seed\": {}, \"messages_per_stream\": {}, \
             \"end_ns\": {}, \"delivered\": {}, \"trace_identical_workers_1_4\": {}, \
             \"violations\": [{}], \"retransmits\": {}, \"retx_bound\": {}, \
             \"peer_down_events\": {}, \"partitions\": {}, \"heals\": {}, \
             \"probes_sent\": {}, \"rtt_samples\": {}, \"flaps\": {}, \"downs\": {}, \
             \"lat_min_ns\": {}, \"lat_mean_ns\": {}, \"lat_max_ns\": {}, \
             \"lat_count\": {} }}{}\n",
            c.name,
            c.seed,
            c.msgs,
            r.end_ns,
            r.delivered,
            c.trace_identical,
            viol,
            r.stats.retransmits,
            if c.retx_bound == u64::MAX {
                -1i64
            } else {
                c.retx_bound as i64
            },
            r.stats.peer_down_events,
            r.stats.partitions,
            r.stats.heals,
            r.stats.probes_sent,
            r.rtt_samples,
            r.flaps,
            r.downs,
            r.lat_min_ns,
            r.lat_mean_ns,
            r.lat_max_ns,
            r.lat_count,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Wall-clock watchdog: abort loudly instead of hanging CI.
fn with_watchdog<T>(secs: u64, f: impl FnOnce() -> T) -> T {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    std::thread::spawn(move || {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(secs);
        while std::time::Instant::now() < deadline {
            if flag.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        eprintln!("gray campaign: watchdog expired after {secs}s — the run-to-idle hung");
        std::process::abort();
    });
    let r = f();
    done.store(true, Ordering::Relaxed);
    r
}

fn print_cell(c: &CellResult) {
    let r = &c.run;
    println!(
        "{:<20} seed {:#06x}: end {:>8.1} ms, {} delivered, retx {} (bound {}), \
         peer-down {}, partitions/heals {}/{}, probes {}, rtt-samples {}, flaps {}, \
         lat(ns) min/mean/max {}/{}/{} over {} frames, workers-identical={} violations={:?}",
        c.name,
        c.seed,
        r.end_ns as f64 / 1e6,
        r.delivered,
        r.stats.retransmits,
        if c.retx_bound == u64::MAX {
            "-".into()
        } else {
            c.retx_bound.to_string()
        },
        r.stats.peer_down_events,
        r.stats.partitions,
        r.stats.heals,
        r.stats.probes_sent,
        r.rtt_samples,
        r.flaps,
        r.lat_min_ns,
        r.lat_mean_ns,
        r.lat_max_ns,
        r.lat_count,
        c.trace_identical,
        c.violations(),
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        let cells: Vec<CellResult> = with_watchdog(240, || {
            CELLS.iter().map(|c| run_cell(c, 0x69A1, 12)).collect()
        });
        for c in &cells {
            print_cell(c);
        }
        let bad: usize = cells.iter().map(|c| c.violations().len()).sum();
        assert_eq!(bad, 0, "smoke: {bad} oracle violations");
        println!("gray-campaign smoke OK: zero oracle violations, traces bit-identical");
        return;
    }

    println!(
        "gray failures: {} cells x 2 seeds, 4 streams, [4,2]x{EPS} redundant hierarchy, \
         workers {{1,4}}",
        CELLS.len()
    );
    let cells: Vec<CellResult> = (0..2u64)
        .flat_map(|i| {
            CELLS
                .iter()
                .map(move |c| with_watchdog(600, || run_cell(c, 0x69A1 + i, 24)))
        })
        .collect();
    for c in &cells {
        print_cell(c);
    }
    let bad: usize = cells.iter().map(|c| c.violations().len()).sum();
    assert_eq!(bad, 0, "{bad} oracle violations across the campaign");

    let root = workspace_root();
    let path = root.join("BENCH_gray.json");
    std::fs::write(&path, to_json(&cells)).expect("write BENCH_gray.json");
    println!("wrote {}", path.display());
}
