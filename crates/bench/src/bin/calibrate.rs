//! Quick calibration check: prints measured vs paper for Tables 1 and 2.
fn main() {
    let n = 1000;
    println!("Table 2 (channels), us/msg:");
    for (i, &len) in vorx_bench::TABLE_SIZES.iter().enumerate() {
        let m = vorx_bench::table2_cell(len, n);
        println!(
            "  {len:>5}B  paper {:>7.1}  measured {m:>7.1}",
            vorx_bench::TABLE2_PAPER[i]
        );
    }
    println!("Table 1 (sliding window), us/msg:");
    for (r, &bufs) in vorx_bench::TABLE1_BUFS.iter().enumerate() {
        print!("  bufs={bufs:>2} ");
        for (i, &len) in vorx_bench::TABLE_SIZES.iter().enumerate() {
            let m = vorx_bench::table1_cell(bufs, len, n);
            print!(" {len}B: {:.0}/{m:.0}", vorx_bench::TABLE1_PAPER[r][i]);
        }
        println!();
    }
}
