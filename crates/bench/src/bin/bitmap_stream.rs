//! E-BMP — §4.1 real-time bitmap transmission: "we obtained a rate of 3.2
//! Mbyte/sec, sufficient to refresh a 900x900 pixel portion of a monochrome
//! (bi-level black and white) display 30 times per second from a remote
//! processor."

use vorx_apps::bitmap::{run_bitmap, BitmapParams};
use vorx_bench::report::{render, Row};

fn main() {
    let mut p = BitmapParams::paper_900();
    p.frames = 30;
    let r = run_bitmap(p);
    let rows = vec![
        Row::new(
            "bitmap stream throughput",
            Some(3.2),
            r.mbytes_per_sec,
            "MB/s",
        ),
        Row::new("900x900 mono refresh rate", Some(30.0), r.fps, "fps"),
    ];
    print!(
        "{}",
        render("E-BMP: no-flow-control bitmap streaming (§4.1)", &rows)
    );
    println!(
        "{} bytes delivered in {} ({} frames of {} bytes)",
        r.bytes_received,
        r.elapsed,
        p.frames,
        p.frame_bytes()
    );
}
