//! E-FFT — §4.2 "Multicast is Inappropriate": the 2D-FFT redistribution.
//!
//! "The problem with this approach is that each processor reads 65536
//! numbers of which only 256 are needed. [...] The latter technique
//! requires the receiver to process only the 256 numbers it needs."
//!
//! Every run is verified numerically against the serial 2D FFT before its
//! timing is reported.

use vorx_apps::fft2d::{run_fft2d, Distribution, Fft2dParams};

fn main() {
    println!("== E-FFT: 2D-FFT redistribution, multicast vs point-to-point ==");
    println!(
        "{:>5} {:>4} | {:>14} {:>14} | {:>13} {:>13} | {:>8}",
        "n", "p", "mc bytes/node", "p2p bytes/node", "mc dist (ms)", "p2p dist (ms)", "p2p wins"
    );
    for (n, p) in [
        (32usize, 4usize),
        (32, 8),
        (64, 8),
        (64, 16),
        (64, 32),
        (128, 16),
    ] {
        let mc = run_fft2d(
            Fft2dParams {
                n,
                p,
                strategy: Distribution::Multicast,
            },
            7,
        );
        let pp = run_fft2d(
            Fft2dParams {
                n,
                p,
                strategy: Distribution::PointToPoint,
            },
            7,
        );
        assert!(
            mc.max_err < 1e-6 && pp.max_err < 1e-6,
            "numeric check failed"
        );
        println!(
            "{:>5} {:>4} | {:>14} {:>14} | {:>13.2} {:>13.2} | {:>7.1}x",
            n,
            p,
            mc.bytes_rx[0],
            pp.bytes_rx[0],
            mc.distribute_max.as_ms_f64(),
            pp.distribute_max.as_ms_f64(),
            mc.distribute_max.as_ns() as f64 / pp.distribute_max.as_ns() as f64
        );
    }
    println!("\n(both strategies verified against the serial 2D FFT, max |err| < 1e-6)");
    println!("paper's 256x256 on 256 nodes: each multicast receiver reads 65536 numbers, needs 256 (256x waste).");
}
