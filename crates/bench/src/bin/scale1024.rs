//! H — §1 scaling claim: "The system can easily be expanded to more than a
//! thousand nodes by replicating the interconnect hardware. [...] A
//! hypercube-based system with 1024 nodes can be built with 256 clusters by
//! using 8 of the 12 ports on each cluster for connections to other
//! clusters and the other four for connections to processing nodes."
//!
//! Builds the actual 1024-node fabric plus smaller configurations and
//! measures what the paper asserts: hardware latency stays far below the
//! ~300 µs software latency, "so that applications programmers need not be
//! concerned with the hardware topology."

use hpcnet::driver::StandaloneNet;
use hpcnet::{Fabric, Frame, NetConfig, NodeAddr, Payload, Topology};

/// Mean/max hardware latency of random unicast traffic on a fabric.
fn random_traffic(
    topo: Topology,
    frames: u64,
    len: u32,
    spacing_ns: u64,
    seed: u64,
) -> (f64, f64, usize) {
    let n = topo.n_endpoints() as u64;
    let max_hops = (0..n.min(64))
        .map(|i| topo.hops(NodeAddr(0), NodeAddr(((i * 97 + 13) % n) as u32)))
        .max()
        .unwrap_or(0);
    let mut net = StandaloneNet::new(Fabric::new(topo, NetConfig::paper_1988()));
    let mut state = seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..frames {
        let src = (rng() % n) as u32;
        let mut dst = (rng() % n) as u32;
        if dst == src {
            dst = (dst + 1) % n as u32;
        }
        // Spread injections so the fabric (not queueing) dominates.
        net.send_at(
            i * spacing_ns,
            Frame::unicast(
                NodeAddr(src),
                NodeAddr(dst),
                0,
                i << 16 | u64::from(src),
                Payload::Synthetic(len),
            ),
        );
    }
    // Record send times by seq for latency measurement.
    let mut sent: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for i in 0..frames {
        sent.insert(i, i * spacing_ns);
    }
    net.run();
    let mut total = 0.0;
    let mut max = 0.0f64;
    for (t, _, f) in &net.delivered {
        let s = sent[&(f.seq >> 16)];
        let lat = (*t - s) as f64 / 1000.0;
        total += lat;
        max = max.max(lat);
    }
    (total / frames as f64, max, max_hops)
}

fn main() {
    println!("== SCALE: hardware latency vs system size (random unicast traffic) ==");
    println!(
        "{:>8} {:>9} {:>10} | {:>15} {:>15} | {:>15}",
        "nodes", "clusters", "max hops", "40B mean/max us", "", "1060B mean us"
    );
    for (clusters, eps) in [(1usize, 12usize), (4, 4), (16, 4), (64, 4), (256, 4)] {
        let topo = Topology::incomplete_hypercube(clusters, eps).unwrap();
        let n = topo.n_endpoints();
        // Injection spacing keeps sources below their link serialization
        // rate, so the numbers measure the fabric, not self-inflicted
        // queueing: 40B frames serialize in 2us, 1060B frames in 53us.
        let (mean_s, max_s, hops) = random_traffic(topo.clone(), 1000, 4, 4_000, 42);
        let spacing_l = 60_000 * 12 / n.min(64) as u64; // per-source >= 53us
        let (mean_l, _max_l, _) = random_traffic(topo, 1000, 1024, spacing_l.max(2_000), 43);
        println!(
            "{:>8} {:>9} {:>10} | {:>7.1} {:>7.1} | {:>15.1}",
            n, clusters, hops, mean_s, max_s, mean_l
        );
    }
    println!();
    println!("software end-to-end latency (Table 2): 303 us for 4B messages.");
    println!("small-frame hardware latency stays 10-30x below it even at 1024 nodes —");
    println!("\"hardware communications latency in the HPC is much smaller than the");
    println!(" latency introduced by the communications software, so that applications");
    println!(" programmers need not be concerned with the hardware topology.\" (§1)");
}
