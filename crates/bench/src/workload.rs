//! Streaming workload generation for large worlds.
//!
//! Spawning every workload process at build time materializes a coroutine
//! stack per process before the first event runs — fine at 16 endpoints,
//! fatal at a million. The streaming generator inverts that: one small
//! generator process per shard wakes as each sim-time *window* opens and
//! spawns only that window's writers and readers, on the shards that own
//! them. The stream set is a pure function of `(seed, window, index)`, so
//! every shard derives the same plan independently — no cross-shard
//! coordination, no build-time materialization, and the simulated outcome
//! stays bit-identical across worker counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use desim::SimDuration;
use vorx::hpcnet::{NodeAddr, Payload};
use vorx::{channel, VCtx, VorxShardedSim};

/// A streaming stream-pair workload: `windows` windows open `window_ns`
/// apart; each spawns `streams_per_window` writer/reader pairs whose
/// endpoints are drawn pseudo-randomly (but purely) from the seed.
#[derive(Clone, Copy, Debug)]
pub struct StreamingWorkload {
    /// Seed for the pure stream derivation.
    pub seed: u64,
    /// Number of sim-time windows.
    pub windows: u32,
    /// Writer/reader pairs spawned per window.
    pub streams_per_window: u32,
    /// Messages each writer sends.
    pub msgs_per_stream: u32,
    /// Gap between window opens (ns); window `k` opens at `k * window_ns`.
    pub window_ns: u64,
    /// Gap between a writer's messages (ns).
    pub pace_ns: u64,
    /// Payload bytes per message (synthetic — no backing allocation).
    pub payload_len: u32,
}

/// SplitMix64 finalizer: the pure source of stream endpoints.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl StreamingWorkload {
    /// Total writer+reader processes the generators will spawn.
    pub fn expected_processes(&self) -> u64 {
        u64::from(self.windows) * u64::from(self.streams_per_window) * 2
    }

    /// Total messages the workload delivers when it runs to completion.
    pub fn expected_messages(&self) -> u64 {
        u64::from(self.windows)
            * u64::from(self.streams_per_window)
            * u64::from(self.msgs_per_stream)
    }

    /// The `i`-th stream of window `k` on an `n`-endpoint world: a pure
    /// function every shard evaluates identically. Source and destination
    /// are always distinct nodes.
    pub fn stream(&self, n: u32, k: u32, i: u32) -> (NodeAddr, NodeAddr) {
        debug_assert!(n >= 2);
        let h = mix(self.seed ^ (u64::from(k) << 32) ^ u64::from(i));
        let src = (h % u64::from(n)) as u32;
        let step = (mix(h) % u64::from(n - 1)) as u32 + 1;
        (NodeAddr(src), NodeAddr((src + step) % n))
    }

    /// Install one streaming generator per shard. `delivered` is bumped by
    /// every reader per message, so the caller can report throughput;
    /// process completion itself is the engine's `run_all` oracle.
    pub fn install(&self, v: &VorxShardedSim, n: u32, delivered: &Arc<AtomicU64>) {
        // One representative node per shard, to route each generator.
        let mut rep: Vec<Option<NodeAddr>> = vec![None; v.n_shards()];
        for a in 0..n {
            let s = v.shard_of(NodeAddr(a));
            if rep[s].is_none() {
                rep[s] = Some(NodeAddr(a));
            }
        }
        let cfg = *self;
        for (shard, rep) in rep.into_iter().enumerate() {
            let Some(rep) = rep else { continue };
            let delivered = Arc::clone(delivered);
            v.spawn_at(rep, format!("gen{shard}"), move |ctx: VCtx| {
                generator(&ctx, cfg, n, &delivered);
            });
        }
    }
}

/// One shard's generator: at each window open, derive the window's streams
/// and spawn the halves this shard owns.
fn generator(ctx: &VCtx, cfg: StreamingWorkload, n: u32, delivered: &Arc<AtomicU64>) {
    for k in 0..cfg.windows {
        if k > 0 {
            ctx.sleep(SimDuration::from_ns(cfg.window_ns));
        }
        ctx.with(|w, sch| {
            let me = w.shard.shard_id;
            for i in 0..cfg.streams_per_window {
                let (src, dst) = cfg.stream(n, k, i);
                if w.shard.owner(src) == me {
                    let name = format!("scale.{k}.{i}");
                    sch.spawn(format!("n{}:w:{name}", src.0), move |ctx: VCtx| {
                        let ch = channel::open(&ctx, src, &name);
                        for _ in 0..cfg.msgs_per_stream {
                            ctx.sleep(SimDuration::from_ns(cfg.pace_ns));
                            ch.write(&ctx, Payload::Synthetic(cfg.payload_len))
                                .expect("scale writer failed");
                        }
                    });
                }
                if w.shard.owner(dst) == me {
                    let name = format!("scale.{k}.{i}");
                    let del = Arc::clone(delivered);
                    sch.spawn(format!("n{}:r:{name}", dst.0), move |ctx: VCtx| {
                        let ch = channel::open(&ctx, dst, &name);
                        for _ in 0..cfg.msgs_per_stream {
                            ch.read(&ctx).expect("scale reader failed");
                            del.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> StreamingWorkload {
        StreamingWorkload {
            seed: 7,
            windows: 3,
            streams_per_window: 5,
            msgs_per_stream: 2,
            window_ns: 1_000_000,
            pace_ns: 10_000,
            payload_len: 64,
        }
    }

    #[test]
    fn streams_are_pure_and_distinct_endpoints() {
        let w = wl();
        for k in 0..w.windows {
            for i in 0..w.streams_per_window {
                let (a, b) = w.stream(1000, k, i);
                assert_eq!((a, b), w.stream(1000, k, i), "must be pure");
                assert_ne!(a, b, "no self-streams");
                assert!(a.0 < 1000 && b.0 < 1000);
            }
        }
    }

    #[test]
    fn expected_counts() {
        let w = wl();
        assert_eq!(w.expected_processes(), 30);
        assert_eq!(w.expected_messages(), 30);
    }
}
