//! Experiment harnesses regenerating every table and figure of
//! *The Evolution of HPC/VORX* (PPoPP 1990), plus the in-text measurements.
//!
//! Each `src/bin/*` binary prints one experiment as paper-vs-measured rows;
//! the runners live here so the criterion benches and integration tests can
//! share them. See `DESIGN.md` (per-experiment index) and `EXPERIMENTS.md`
//! (recorded results) at the repository root.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod report;
pub mod workload;

pub use experiments::*;
